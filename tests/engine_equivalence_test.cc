// Golden equivalence for the staged engine: Simulator::Run (FleetState +
// OrderBook + BatchBuilder + AssignmentApplier + observers) must reproduce
// the pre-refactor monolithic engine loop bit-for-bit — same assignments,
// same SimResult aggregates down to the last ulp — for every dispatcher at
// any thread count. ReferenceRun below is a faithful copy of the monolith
// (full per-batch recounts, O(W²) served-rider erases and all), kept as the
// executable specification the staged engine is checked against.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "api/dispatcher_registry.h"
#include "geo/region_partitioner.h"
#include "registry_test_helpers.h"
#include "geo/travel.h"
#include "prediction/forecast.h"
#include "prediction/predictor.h"
#include "scenario/script.h"
#include "sim/batch.h"
#include "sim/engine.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace mrvd {
namespace {

// ------------------------------------------------ reference (old) engine

struct RefDriverState {
  LatLon location;
  RegionId region = kInvalidRegion;
  double available_since = 0.0;
  bool busy = false;
  double busy_until = 0.0;
  LatLon busy_dest;
  RegionId busy_dest_region = kInvalidRegion;
  double pending_estimate = -1.0;
};

struct RefPendingRider {
  const Order* order = nullptr;
  double trip_seconds = 0.0;
  double revenue = 0.0;
  RegionId pickup_region = kInvalidRegion;
  RegionId dropoff_region = kInvalidRegion;
};

/// The monolithic Simulator::Run as it stood before the staged refactor
/// (PR 1 state), minus log output. Uses only public library API.
SimResult ReferenceRun(const SimConfig& config, const Workload& workload,
                       const Grid& grid, const TravelCostModel& cost_model,
                       const DemandForecast* forecast,
                       Dispatcher& dispatcher) {
  SimResult result;
  result.dispatcher = dispatcher.name();
  result.total_orders = static_cast<int64_t>(workload.orders.size());
  result.region_idle.assign(static_cast<size_t>(grid.num_regions()), {});

  std::vector<RefDriverState> drivers(workload.drivers.size());
  for (size_t j = 0; j < drivers.size(); ++j) {
    drivers[j].location = workload.drivers[j].origin;
    drivers[j].region = grid.RegionOf(drivers[j].location);
    drivers[j].available_since = workload.drivers[j].join_time;
    drivers[j].busy = false;
  }
  using BusyEntry = std::pair<double, int>;
  std::priority_queue<BusyEntry, std::vector<BusyEntry>, std::greater<>>
      busy_heap;

  std::deque<RefPendingRider> waiting;
  size_t next_order = 0;

  std::vector<int> fresh_drivers;
  for (size_t j = 0; j < drivers.size(); ++j) {
    fresh_drivers.push_back(static_cast<int>(j));
  }

  const double delta = config.batch_interval;
  const double horizon = config.horizon_seconds;

  int threads = config.num_threads == 0 ? ThreadPool::HardwareThreads()
                                        : config.num_threads;
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<RegionPartitioner> partitioner;
  BatchExecution execution;
  if (threads > 1) {
    int shards = config.num_shards > 0 ? config.num_shards : 2 * threads;
    pool = std::make_unique<ThreadPool>(threads);
    partitioner = std::make_unique<RegionPartitioner>(
        RegionPartitioner::RowBands(grid, shards));
    execution.pool = pool.get();
    execution.partitioner = partitioner.get();
  }

  for (double now = 0.0; now < horizon; now += delta) {
    while (!busy_heap.empty() && busy_heap.top().first <= now) {
      int j = busy_heap.top().second;
      busy_heap.pop();
      RefDriverState& d = drivers[static_cast<size_t>(j)];
      d.busy = false;
      d.location = d.busy_dest;
      d.region = d.busy_dest_region;
      d.available_since = d.busy_until;
      fresh_drivers.push_back(j);
    }

    while (next_order < workload.orders.size() &&
           workload.orders[next_order].request_time <= now) {
      const Order& o = workload.orders[next_order];
      RefPendingRider pr;
      pr.order = &o;
      pr.trip_seconds = cost_model.TravelSeconds(o.pickup, o.dropoff);
      pr.revenue = config.alpha * pr.trip_seconds;
      pr.pickup_region = grid.RegionOf(o.pickup);
      pr.dropoff_region = grid.RegionOf(o.dropoff);
      waiting.push_back(pr);
      ++next_order;
    }

    std::erase_if(waiting, [&](const RefPendingRider& pr) {
      if (pr.order->pickup_deadline < now) {
        ++result.reneged_orders;
        return true;
      }
      return false;
    });

    if (waiting.empty() && fresh_drivers.empty() && busy_heap.empty() &&
        next_order >= workload.orders.size()) {
      break;
    }

    BatchContext ctx(now, config.window_seconds, config.reneging_beta, grid,
                     cost_model, config.candidate_mode);
    if (pool != nullptr) ctx.SetExecution(&execution);
    std::vector<int> rider_backing;
    rider_backing.reserve(waiting.size());
    for (size_t i = 0; i < waiting.size(); ++i) {
      const RefPendingRider& pr = waiting[i];
      WaitingRider wr;
      wr.order_id = pr.order->id;
      wr.pickup = pr.order->pickup;
      wr.dropoff = pr.order->dropoff;
      wr.request_time = pr.order->request_time;
      wr.pickup_deadline = pr.order->pickup_deadline;
      wr.revenue = pr.revenue;
      wr.trip_seconds = pr.trip_seconds;
      wr.pickup_region = pr.pickup_region;
      wr.dropoff_region = pr.dropoff_region;
      ctx.AddRider(wr);
      rider_backing.push_back(static_cast<int>(i));
    }
    std::vector<int> driver_backing;
    for (size_t j = 0; j < drivers.size(); ++j) {
      const RefDriverState& d = drivers[j];
      if (d.busy) continue;
      AvailableDriver ad;
      ad.driver_id = static_cast<DriverId>(j);
      ad.location = d.location;
      ad.region = d.region;
      ad.available_since = d.available_since;
      ctx.AddDriver(ad);
      driver_backing.push_back(static_cast<int>(j));
    }

    std::vector<RegionSnapshot> snaps(static_cast<size_t>(grid.num_regions()));
    for (const auto& r : ctx.riders()) {
      ++snaps[static_cast<size_t>(r.pickup_region)].waiting_riders;
    }
    for (const auto& d : ctx.drivers()) {
      ++snaps[static_cast<size_t>(d.region)].available_drivers;
    }
    if (forecast != nullptr) {
      for (int k = 0; k < grid.num_regions(); ++k) {
        snaps[static_cast<size_t>(k)].predicted_riders =
            forecast->WindowCount(now, config.window_seconds, k);
      }
    }
    for (const auto& d : drivers) {
      if (d.busy && d.busy_until > now &&
          d.busy_until <= now + config.window_seconds) {
        snaps[static_cast<size_t>(d.busy_dest_region)].predicted_drivers +=
            1.0;
      }
    }
    ctx.SetSnapshots(std::move(snaps));

    if (config.record_idle_samples) {
      for (int j : fresh_drivers) {
        RefDriverState& d = drivers[static_cast<size_t>(j)];
        if (d.busy) continue;
        d.pending_estimate = ctx.ExpectedIdleSeconds(d.region);
      }
    }
    fresh_drivers.clear();

    std::vector<Assignment> assignments;
    Stopwatch watch;
    dispatcher.Dispatch(ctx, &assignments);
    result.batch_seconds.Add(watch.ElapsedSeconds());
    ++result.num_batches;

    std::vector<char> rider_taken(ctx.riders().size(), false);
    std::vector<char> driver_taken(ctx.drivers().size(), false);
    std::vector<int> served_waiting_indices;
    for (const Assignment& a : assignments) {
      if (a.rider_index < 0 ||
          a.rider_index >= static_cast<int>(ctx.riders().size()) ||
          a.driver_index < 0 ||
          a.driver_index >= static_cast<int>(ctx.drivers().size())) {
        continue;
      }
      if (rider_taken[static_cast<size_t>(a.rider_index)] ||
          driver_taken[static_cast<size_t>(a.driver_index)]) {
        continue;
      }
      const WaitingRider& r = ctx.riders()[static_cast<size_t>(a.rider_index)];
      const AvailableDriver& ad =
          ctx.drivers()[static_cast<size_t>(a.driver_index)];
      double pickup_tt =
          config.zero_pickup_travel ? 0.0 : ctx.PickupSeconds(ad, r);
      if (!config.zero_pickup_travel && now + pickup_tt > r.pickup_deadline) {
        continue;
      }
      rider_taken[static_cast<size_t>(a.rider_index)] = true;
      driver_taken[static_cast<size_t>(a.driver_index)] = true;

      int j = driver_backing[static_cast<size_t>(a.driver_index)];
      RefDriverState& d = drivers[static_cast<size_t>(j)];
      double real_idle = now - d.available_since;
      if (config.record_idle_samples && d.pending_estimate >= 0.0) {
        result.idle_error.Add(d.pending_estimate, real_idle);
        auto& reg = result.region_idle[static_cast<size_t>(d.region)];
        reg.predicted_sum += d.pending_estimate;
        reg.real_sum += real_idle;
        ++reg.count;
      }
      result.driver_idle_seconds.Add(real_idle);
      d.pending_estimate = -1.0;

      d.busy = true;
      d.busy_until = now + pickup_tt + r.trip_seconds;
      d.busy_dest = r.dropoff;
      d.busy_dest_region = r.dropoff_region;
      busy_heap.push({d.busy_until, j});

      result.total_revenue += r.revenue;
      ++result.served_orders;
      result.served_wait_seconds.Add(now - r.request_time);
      served_waiting_indices.push_back(
          rider_backing[static_cast<size_t>(a.rider_index)]);
    }

    std::sort(served_waiting_indices.begin(), served_waiting_indices.end(),
              std::greater<>());
    for (int w : served_waiting_indices) {
      waiting.erase(waiting.begin() + w);
    }
  }

  result.reneged_orders += static_cast<int64_t>(waiting.size());
  result.reneged_orders +=
      static_cast<int64_t>(workload.orders.size() - next_order);
  return result;
}

// ---------------------------------------------------------- comparisons

void ExpectBitIdentical(const SimResult& want, const SimResult& got,
                        const std::string& label) {
  EXPECT_EQ(want.served_orders, got.served_orders) << label;
  EXPECT_EQ(want.reneged_orders, got.reneged_orders) << label;
  EXPECT_EQ(want.total_orders, got.total_orders) << label;
  EXPECT_EQ(want.num_batches, got.num_batches) << label;
  // Bit-exact double comparisons: the staged engine must accumulate the
  // same values in the same order, not merely approximately agree.
  EXPECT_EQ(want.total_revenue, got.total_revenue) << label;
  EXPECT_EQ(want.served_wait_seconds.count(), got.served_wait_seconds.count())
      << label;
  EXPECT_EQ(want.served_wait_seconds.mean(), got.served_wait_seconds.mean())
      << label;
  EXPECT_EQ(want.served_wait_seconds.variance(),
            got.served_wait_seconds.variance())
      << label;
  EXPECT_EQ(want.driver_idle_seconds.count(), got.driver_idle_seconds.count())
      << label;
  EXPECT_EQ(want.driver_idle_seconds.mean(), got.driver_idle_seconds.mean())
      << label;
  EXPECT_EQ(want.driver_idle_seconds.max(), got.driver_idle_seconds.max())
      << label;
  EXPECT_EQ(want.idle_error.count(), got.idle_error.count()) << label;
  EXPECT_EQ(want.idle_error.Mae(), got.idle_error.Mae()) << label;
  EXPECT_EQ(want.idle_error.RealRmse(), got.idle_error.RealRmse()) << label;
  ASSERT_EQ(want.region_idle.size(), got.region_idle.size()) << label;
  for (size_t k = 0; k < want.region_idle.size(); ++k) {
    EXPECT_EQ(want.region_idle[k].predicted_sum,
              got.region_idle[k].predicted_sum)
        << label << " region " << k;
    EXPECT_EQ(want.region_idle[k].real_sum, got.region_idle[k].real_sum)
        << label << " region " << k;
    EXPECT_EQ(want.region_idle[k].count, got.region_idle[k].count)
        << label << " region " << k;
  }
}

using test::MakeSeeded;  // registry-built, canonical test seed by default

class EngineEquivalenceTest : public ::testing::Test {
 protected:
  EngineEquivalenceTest() : cost_(7.0, 1.3) {
    GeneratorConfig gcfg;
    gcfg.orders_per_day = 500.0;
    gcfg.seed = 20190417;
    gen_ = std::make_unique<NycLikeGenerator>(gcfg);
    workload_ = gen_->GenerateDay(/*day_index=*/1, /*num_drivers=*/35);
  }

  SimConfig BaseConfig() const {
    SimConfig cfg;
    cfg.horizon_seconds = 4 * 3600.0;
    cfg.batch_interval = 30.0;
    return cfg;
  }

  void CheckDispatcher(const std::string& name, SimConfig cfg,
                       const DemandForecast* forecast = nullptr) {
    if (DispatcherRegistry::Global().RequiresZeroPickupTravel(name)) {
      cfg.zero_pickup_travel = true;
    }
    for (int threads : {1, 4}) {
      cfg.num_threads = threads;
      auto ref_dispatcher = MakeSeeded(name);
      auto staged_dispatcher = MakeSeeded(name);
      ASSERT_NE(ref_dispatcher, nullptr) << name;
      SimResult want = ReferenceRun(cfg, workload_, gen_->grid(), cost_,
                                    forecast, *ref_dispatcher);
      // Guard against a vacuous pass: the scenario must actually serve and
      // renege orders across many batches.
      ASSERT_GT(want.served_orders, 0) << name;
      ASSERT_GT(want.reneged_orders, 0) << name;
      ASSERT_GT(want.num_batches, 100) << name;
      Simulator staged(cfg, workload_, gen_->grid(), cost_, forecast);
      SimResult got = staged.Run(*staged_dispatcher);
      ExpectBitIdentical(
          want, got, name + " @" + std::to_string(threads) + " threads");
      // The staged engine additionally times its batch construction.
      EXPECT_EQ(got.batch_build_seconds.count(), got.num_batches) << name;

      // An *empty* ScenarioScript must leave the scripted engine path —
      // event merge, surge multipliers, sign-on/off lifecycle — completely
      // dormant: every aggregate stays bit-identical to the monolith.
      ScenarioScript empty_script;
      auto scripted_dispatcher = MakeSeeded(name);
      Simulator scripted(cfg, workload_, gen_->grid(), cost_, forecast);
      SimResult got_scripted =
          scripted.Run(*scripted_dispatcher, empty_script);
      ExpectBitIdentical(want, got_scripted,
                         name + " empty-script @" + std::to_string(threads) +
                             " threads");
      EXPECT_EQ(got_scripted.cancelled_orders, 0) << name;
      EXPECT_EQ(got_scripted.driver_sign_ons, 0) << name;
      EXPECT_EQ(got_scripted.driver_sign_offs, 0) << name;
      EXPECT_EQ(got_scripted.surge_changes, 0) << name;
    }
  }

  StraightLineCostModel cost_;
  std::unique_ptr<NycLikeGenerator> gen_;
  Workload workload_;
};

TEST_F(EngineEquivalenceTest, Rand) { CheckDispatcher("RAND", BaseConfig()); }
TEST_F(EngineEquivalenceTest, Near) { CheckDispatcher("NEAR", BaseConfig()); }
TEST_F(EngineEquivalenceTest, Ltg) { CheckDispatcher("LTG", BaseConfig()); }
TEST_F(EngineEquivalenceTest, Polar) { CheckDispatcher("POLAR", BaseConfig()); }
TEST_F(EngineEquivalenceTest, Irg) { CheckDispatcher("IRG", BaseConfig()); }
TEST_F(EngineEquivalenceTest, Ls) { CheckDispatcher("LS", BaseConfig()); }
TEST_F(EngineEquivalenceTest, Short) { CheckDispatcher("SHORT", BaseConfig()); }
TEST_F(EngineEquivalenceTest, Upper) { CheckDispatcher("UPPER", BaseConfig()); }

TEST_F(EngineEquivalenceTest, IrgRegionLocalMode) {
  SimConfig cfg = BaseConfig();
  cfg.candidate_mode = CandidateMode::kRegionLocal;
  CheckDispatcher("IRG", cfg);
}

TEST_F(EngineEquivalenceTest, PredictionBackedDispatchersWithForecast) {
  // With a forecast attached, the staged BuildSnapshots forwards the exact
  // (now, t_c, region) arguments the monolith used — predicted_riders is
  // nonzero and feeds the ET chain / POLAR blueprint, so any wiring
  // regression breaks the bit-identical check here.
  DemandHistory realized = gen_->RealizedCounts(workload_, 48);
  auto oracle = MakeOraclePredictor();
  auto fc = DemandForecast::Build(*oracle, realized, /*eval_day=*/0);
  ASSERT_TRUE(fc.ok());
  for (const char* name : {"IRG", "LTG", "POLAR"}) {
    CheckDispatcher(name, BaseConfig(), &fc.value());
  }
}

TEST_F(EngineEquivalenceTest, ShortWithoutIdleSamples) {
  SimConfig cfg = BaseConfig();
  cfg.record_idle_samples = false;
  CheckDispatcher("SHORT", cfg);
}

}  // namespace
}  // namespace mrvd
