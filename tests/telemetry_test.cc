// Telemetry subsystem (src/telemetry/ and its engine wiring): LogHistogram
// edge cases (empty / single sample / extreme magnitudes), the registry's
// deterministic-signature contract across engine thread counts {1, 4},
// trace-span recording in synchronous and async-drain modes (the drain
// thread's shutdown handshake runs under TSan in CI), Chrome-trace export
// well-formedness, bit-identity of results with telemetry on vs off, and
// ObserverList/ObserverChain forwarding of the OnBatchTimings /
// OnRunTelemetry hooks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "api/api.h"
#include "telemetry/metrics.h"
#include "telemetry/session.h"
#include "telemetry/trace.h"
#include "util/json_reader.h"
#include "util/thread_pool.h"

namespace mrvd {
namespace {

namespace fs = std::filesystem;

using telemetry::LogHistogram;
using telemetry::MetricScope;
using telemetry::MetricsRegistry;
using telemetry::TelemetryConfig;
using telemetry::TelemetrySession;
using telemetry::TraceSpan;

// ------------------------------------------------------------ LogHistogram

TEST(LogHistogramTest, EmptyReportsZeroes) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.zero_count(), 0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.P99(), 0.0);
}

TEST(LogHistogramTest, SingleSampleIsEveryQuantile) {
  LogHistogram h;
  h.Add(3.5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 3.5);
  EXPECT_EQ(h.max(), 3.5);
  EXPECT_EQ(h.mean(), 3.5);
  // The [min, max] clamp makes the degenerate case exact, not approximate.
  EXPECT_EQ(h.Quantile(0.0), 3.5);
  EXPECT_EQ(h.P50(), 3.5);
  EXPECT_EQ(h.P95(), 3.5);
  EXPECT_EQ(h.P99(), 3.5);
  EXPECT_EQ(h.Quantile(1.0), 3.5);
}

TEST(LogHistogramTest, NonPositiveAndNonFiniteLandInZeroBucket) {
  LogHistogram h;
  h.Add(0.0);
  h.Add(-2.0);
  h.Add(std::numeric_limits<double>::quiet_NaN());
  h.Add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.zero_count(), 4);
  EXPECT_TRUE(h.buckets().empty());
  // Every sample sits in the zero bucket, which reports as 0 (clamped into
  // the observed range).
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(LogHistogramTest, ExtremeMagnitudesDoNotLoseSamples) {
  LogHistogram h;
  h.Add(1e-300);
  h.Add(1e300);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.zero_count(), 0);
  EXPECT_EQ(h.min(), 1e-300);
  EXPECT_EQ(h.max(), 1e300);
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, h.min()) << q;
    EXPECT_LE(v, h.max()) << q;
  }
}

TEST(LogHistogramTest, BucketBoundsBracketTheSample) {
  LogHistogram h;
  h.Add(0.0123);
  ASSERT_EQ(h.buckets().size(), 1u);
  const int index = h.buckets().begin()->first;
  EXPECT_LE(LogHistogram::BucketLo(index), 0.0123);
  EXPECT_GT(LogHistogram::BucketHi(index), 0.0123);
  // ~2.2% relative bucket width: the bounds are tight around the sample.
  EXPECT_LT(LogHistogram::BucketHi(index) / LogHistogram::BucketLo(index),
            1.03);
}

TEST(LogHistogramTest, QuantilesTrackUniformSamples) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000);
  // Bucket resolution is ~2.2%; allow 5% on the interpolated quantiles.
  EXPECT_NEAR(h.P50(), 500.0, 25.0);
  EXPECT_NEAR(h.P95(), 950.0, 48.0);
  EXPECT_NEAR(h.P99(), 990.0, 50.0);
  EXPECT_LE(h.P50(), h.P95());
  EXPECT_LE(h.P95(), h.P99());
  EXPECT_LE(h.P99(), h.max());
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1000.0);
}

// --------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistryTest, LookupsReturnStablePointers) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.FindCounter("a"), nullptr);
  telemetry::Counter* a = reg.counter("a");
  a->Add(2);
  EXPECT_EQ(reg.counter("a"), a);  // same metric, scope fixed at creation
  EXPECT_EQ(reg.FindCounter("a"), a);
  EXPECT_EQ(reg.FindCounter("a")->value(), 2);
  EXPECT_EQ(reg.FindHistogram("missing"), nullptr);
  EXPECT_EQ(reg.FindGauge("missing"), nullptr);
}

TEST(MetricsRegistryTest, SignatureCoversOnlyDeterministicMetrics) {
  MetricsRegistry reg;
  reg.counter("det.events")->Add(7);
  reg.counter("exec.repartitions", MetricScope::kExecution)->Add(3);
  reg.histogram("det.samples", MetricScope::kDeterministic)->Add(0.25);
  reg.histogram("exec.seconds")->Add(1.5);  // kExecution default
  reg.gauge("exec.depth")->Set(4.0);

  const std::string signature = reg.DeterministicSignature();
  EXPECT_EQ(signature, "counter det.events=7\nhistogram det.samples#1\n");
}

TEST(MetricsRegistryTest, ToJsonParsesAndCarriesScopes) {
  MetricsRegistry reg;
  reg.counter("engine.batches")->Add(12);
  reg.histogram("engine.dispatch_seconds", MetricScope::kDeterministic)
      ->Add(0.003);
  reg.gauge("pipeline.shards")->Set(8.0);

  StatusOr<JsonValue> doc = ParseJson(reg.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* batches = counters->Find("engine.batches");
  ASSERT_NE(batches, nullptr);
  EXPECT_EQ(*batches->GetInt64("value"), 12);
  EXPECT_EQ(*batches->GetString("scope"), "deterministic");

  const JsonValue* hists = doc->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* dispatch = hists->Find("engine.dispatch_seconds");
  ASSERT_NE(dispatch, nullptr);
  EXPECT_EQ(*dispatch->GetInt64("count"), 1);
  EXPECT_EQ(*dispatch->GetString("scope"), "deterministic");

  const JsonValue* gauges = doc->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  const JsonValue* shards = gauges->Find("pipeline.shards");
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(*shards->GetDouble("value"), 8.0);
  EXPECT_EQ(*shards->GetString("scope"), "execution");
}

// ------------------------------------------------------------- TraceSpans

/// Unique fresh temp file path, removed on scope exit.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            ("mrvd_telemetry_" + tag + "_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".json");
    fs::remove(path_);
  }
  ~TempFile() { fs::remove(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

TEST(TraceSessionTest, SyncModeRecordsNestedSpans) {
  TelemetryConfig config;
  config.async_drain = false;
  TelemetrySession session(config);
  {
    TraceSpan outer(&session, "outer");
    TraceSpan inner(&session, "inner");
  }
  session.Finish();
  EXPECT_EQ(session.drained_events(), 2);

  TempFile file("sync_nested");
  Status written = session.WriteChromeTrace(file.str());
  ASSERT_TRUE(written.ok()) << written;
  StatusOr<JsonValue> doc = ReadJsonFile(file.str());
  ASSERT_TRUE(doc.ok()) << doc.status();

  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  bool has_thread_name = false;
  for (const JsonValue& e : events->array()) {
    const std::string ph = *e.GetString("ph");
    if (ph == "M") {
      has_thread_name = true;
      continue;
    }
    ASSERT_EQ(ph, "X");
    const std::string name = *e.GetString("name");
    if (name == "outer") outer = &e;
    if (name == "inner") inner = &e;
  }
  EXPECT_TRUE(has_thread_name);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Proper nesting: the outer span starts no later and ends no earlier.
  const double outer_ts = *outer->GetDouble("ts");
  const double inner_ts = *inner->GetDouble("ts");
  const double outer_dur = *outer->GetDouble("dur");
  const double inner_dur = *inner->GetDouble("dur");
  EXPECT_LE(outer_ts, inner_ts);
  EXPECT_GE(outer_ts + outer_dur, inner_ts + inner_dur);
  EXPECT_EQ(*outer->GetInt64("tid"), *inner->GetInt64("tid"));
}

TEST(TraceSessionTest, NullAndDisabledSessionsAreNoops) {
  {
    TraceSpan span(nullptr, "nothing");  // must not crash
  }
  TelemetryConfig config;
  config.tracing = false;
  config.async_drain = false;
  TelemetrySession session(config);
  {
    TraceSpan span(&session, "dropped");
  }
  session.Finish();
  EXPECT_EQ(session.drained_events(), 0);
}

TEST(TraceSessionTest, WriteChromeTraceRequiresFinish) {
  TelemetryConfig config;
  config.async_drain = false;
  TelemetrySession session(config);
  TempFile file("unfinished");
  EXPECT_FALSE(session.WriteChromeTrace(file.str()).ok());
}

TEST(TraceSessionTest, FinishIsIdempotentAndDropsLateSpans) {
  TelemetryConfig config;
  config.async_drain = false;
  TelemetrySession session(config);
  {
    TraceSpan span(&session, "before");
  }
  session.Finish();
  EXPECT_EQ(session.drained_events(), 1);
  {
    TraceSpan late(&session, "after");  // finished session: no-op
  }
  session.Finish();
  EXPECT_EQ(session.drained_events(), 1);
}

TEST(TraceSessionTest, AsyncDrainFlushesEverythingOnShutdown) {
  // The TSan stress: many pool workers record through thread-local buffers
  // while the drainer consumes, then Finish() flushes partial chunks and
  // joins. Small chunks force mid-run hand-offs so the drainer actually
  // races the recorders.
  TelemetryConfig config;
  config.chunk_events = 64;
  TelemetrySession session(config);
  constexpr int kTasks = 1000;
  {
    ThreadPool pool(4);
    pool.ParallelFor(kTasks, [&](int i) {
      TraceSpan span(&session, "work");
      if (i % 2 == 0) {
        TraceSpan nested(&session, "nested");
      }
    });
  }
  {
    TraceSpan main_span(&session, "main");
  }
  session.Finish();
  EXPECT_EQ(session.drained_events(), kTasks + kTasks / 2 + 1);
}

// -------------------------------------------------- engine + API wiring

class EngineTelemetryTest : public testing::Test {
 protected:
  static SimulationBuilder MakeBuilder() {
    GeneratorConfig gcfg;
    gcfg.grid_rows = 8;
    gcfg.grid_cols = 8;
    gcfg.orders_per_day = 4000;
    gcfg.seed = 20190417;
    SimulationBuilder builder;
    builder.GenerateNycDay(/*day_index=*/1, /*num_drivers=*/40, gcfg)
        .BatchInterval(30.0)
        .HorizonSeconds(2 * 3600.0);
    return builder;
  }
};

TEST_F(EngineTelemetryTest, SimResultReportsLatencyPercentiles) {
  StatusOr<Simulation> sim = MakeBuilder().Build();
  ASSERT_TRUE(sim.ok()) << sim.status();
  StatusOr<SimResult> result = sim->Run("NEAR");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->num_batches, 0);
  EXPECT_GT(result->dispatch_latency_p50, 0.0);
  EXPECT_LE(result->dispatch_latency_p50, result->dispatch_latency_p95);
  EXPECT_LE(result->dispatch_latency_p95, result->dispatch_latency_p99);
}

TEST_F(EngineTelemetryTest, TelemetryDoesNotChangeResults) {
  StatusOr<Simulation> plain = MakeBuilder().Build();
  ASSERT_TRUE(plain.ok()) << plain.status();
  StatusOr<SimResult> baseline = plain->Run("LS");
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  TelemetrySession session;
  StatusOr<Simulation> instrumented =
      MakeBuilder().WithTelemetry(&session).Build();
  ASSERT_TRUE(instrumented.ok()) << instrumented.status();
  StatusOr<SimResult> with = instrumented->Run("LS");
  ASSERT_TRUE(with.ok()) << with.status();
  session.Finish();

  EXPECT_EQ(with->served_orders, baseline->served_orders);
  EXPECT_EQ(with->reneged_orders, baseline->reneged_orders);
  EXPECT_EQ(with->num_batches, baseline->num_batches);
  EXPECT_EQ(with->total_revenue, baseline->total_revenue);
  EXPECT_EQ(with->dispatch_sweeps, baseline->dispatch_sweeps);
  EXPECT_EQ(with->dispatch_swaps_applied, baseline->dispatch_swaps_applied);
}

TEST_F(EngineTelemetryTest, DeterministicSignatureIdenticalAcrossThreads) {
  std::vector<std::string> signatures;
  for (int threads : {1, 4}) {
    TelemetrySession session;
    StatusOr<Simulation> sim =
        MakeBuilder().Threads(threads).WithTelemetry(&session).Build();
    ASSERT_TRUE(sim.ok()) << sim.status();
    StatusOr<SimResult> result = sim->Run("LS");
    ASSERT_TRUE(result.ok()) << result.status();
    session.Finish();

    const MetricsRegistry& reg = session.metrics();
    ASSERT_NE(reg.FindCounter("engine.batches"), nullptr);
    EXPECT_EQ(reg.FindCounter("engine.batches")->value(),
              result->num_batches);
    ASSERT_NE(reg.FindCounter("engine.assignments"), nullptr);
    EXPECT_EQ(reg.FindCounter("engine.assignments")->value(),
              result->served_orders);
    ASSERT_NE(reg.FindHistogram("engine.dispatch_seconds"), nullptr);
    EXPECT_EQ(reg.FindHistogram("engine.dispatch_seconds")->count(),
              result->num_batches);
    signatures.push_back(reg.DeterministicSignature());
    EXPECT_FALSE(signatures.back().empty());
  }
  EXPECT_EQ(signatures[0], signatures[1]);
}

TEST_F(EngineTelemetryTest, ChromeTraceFromParallelRunIsWellFormed) {
  TelemetrySession session;  // tracing on, async drain on
  StatusOr<Simulation> sim =
      MakeBuilder().Threads(4).WithTelemetry(&session).Build();
  ASSERT_TRUE(sim.ok()) << sim.status();
  StatusOr<SimResult> result = sim->Run("LS");
  ASSERT_TRUE(result.ok()) << result.status();
  session.Finish();
  EXPECT_GT(session.drained_events(), 0);

  TempFile file("engine_trace");
  Status written = session.WriteChromeTrace(file.str());
  ASSERT_TRUE(written.ok()) << written;
  StatusOr<JsonValue> doc = ReadJsonFile(file.str());
  ASSERT_TRUE(doc.ok()) << doc.status();

  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  int64_t batch_spans = 0;
  int64_t dispatch_spans = 0;
  for (const JsonValue& e : events->array()) {
    if (*e.GetString("ph") != "X") continue;
    const int64_t tid = *e.GetInt64("tid");
    EXPECT_GE(tid, 1);
    EXPECT_GE(*e.GetDouble("ts"), 0.0);
    EXPECT_GE(*e.GetDouble("dur"), 0.0);
    const std::string name = *e.GetString("name");
    if (name == "batch") ++batch_spans;
    if (name == "dispatch") ++dispatch_spans;
  }
  // One batch span and one nested dispatch span per engine batch.
  EXPECT_EQ(batch_spans, result->num_batches);
  EXPECT_EQ(dispatch_spans, result->num_batches);
}

// -------------------------------------------------- observer forwarding

/// Counts the telemetry-era hooks and remembers the last BatchTimings.
class HookRecorder final : public SimObserver {
 public:
  void OnBatchTimings(double /*now*/, const BatchTimings& timings) override {
    ++batch_timings_calls;
    last_timings = timings;
  }
  void OnRunTelemetry(double /*end_time*/,
                      const TelemetrySession& session) override {
    ++run_telemetry_calls;
    last_session = &session;
  }

  int batch_timings_calls = 0;
  int run_telemetry_calls = 0;
  BatchTimings last_timings;
  const TelemetrySession* last_session = nullptr;
};

TEST_F(EngineTelemetryTest, ChainForwardsTimingsAndTelemetryHooks) {
  HookRecorder first;
  HookRecorder second;
  ObserverChain chain;
  chain.Add(&first).Add(&second);

  TelemetrySession session;
  StatusOr<Simulation> sim = MakeBuilder().WithTelemetry(&session).Build();
  ASSERT_TRUE(sim.ok()) << sim.status();
  StatusOr<SimResult> result = sim->Run("NEAR", &chain);
  ASSERT_TRUE(result.ok()) << result.status();

  for (const HookRecorder* r : {&first, &second}) {
    EXPECT_EQ(r->batch_timings_calls, result->num_batches);
    EXPECT_EQ(r->run_telemetry_calls, 1);
    EXPECT_EQ(r->last_session, &session);
    EXPECT_GE(r->last_timings.TotalSeconds(),
              r->last_timings.dispatch_seconds);
    EXPECT_GT(r->last_timings.TotalSeconds(), 0.0);
  }
}

TEST_F(EngineTelemetryTest, RunTelemetryHookRequiresASession) {
  HookRecorder recorder;
  ObserverChain chain;
  chain.Add(&recorder);
  StatusOr<Simulation> sim = MakeBuilder().Build();
  ASSERT_TRUE(sim.ok()) << sim.status();
  StatusOr<SimResult> result = sim->Run("NEAR", &chain);
  ASSERT_TRUE(result.ok()) << result.status();
  // Timings fire for every run; the telemetry hook only with a session.
  EXPECT_EQ(recorder.batch_timings_calls, result->num_batches);
  EXPECT_EQ(recorder.run_telemetry_calls, 0);
}

}  // namespace
}  // namespace mrvd
