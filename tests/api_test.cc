// Experiment API layer (src/api/): SimulationBuilder validation,
// DispatcherRegistry spec parsing and self-registration, ObserverChain
// event-forwarding order, and ExperimentRunner determinism across runner
// thread counts — the equivalence-suite guarantee extended to the sweep
// layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/api.h"
#include "dispatch/dispatchers.h"
#include "scenario/script.h"

namespace mrvd {
namespace {

// ------------------------------------------------------ SimConfig::Validate

TEST(SimConfigValidateTest, DefaultConfigIsValid) {
  EXPECT_TRUE(SimConfig{}.Validate().ok());
}

TEST(SimConfigValidateTest, RejectsNonPositiveCoreIntervals) {
  SimConfig cfg;
  cfg.batch_interval = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
  EXPECT_NE(cfg.Validate().message().find("batch_interval"), std::string::npos);

  cfg = SimConfig{};
  cfg.window_seconds = -1.0;
  EXPECT_FALSE(cfg.Validate().ok());
  EXPECT_NE(cfg.Validate().message().find("window_seconds"), std::string::npos);

  cfg = SimConfig{};
  cfg.horizon_seconds = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
  EXPECT_NE(cfg.Validate().message().find("horizon_seconds"),
            std::string::npos);
}

TEST(SimConfigValidateTest, RejectsNonFiniteValues) {
  // ParseDouble accepts "inf"/"nan", so a config delta can smuggle them
  // in; an infinite horizon (or batch interval) would hang the batch loop
  // forever and NaN comparisons silently misbehave — Validate() is the
  // gate.
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (double bad : {inf, nan}) {
    SimConfig cfg;
    cfg.horizon_seconds = bad;
    EXPECT_FALSE(cfg.Validate().ok()) << bad;

    cfg = SimConfig{};
    cfg.batch_interval = bad;
    EXPECT_FALSE(cfg.Validate().ok()) << bad;

    cfg = SimConfig{};
    cfg.window_seconds = bad;
    EXPECT_FALSE(cfg.Validate().ok()) << bad;

    cfg = SimConfig{};
    cfg.alpha = bad;
    EXPECT_FALSE(cfg.Validate().ok()) << bad;

    cfg = SimConfig{};
    cfg.reneging_beta = bad;
    EXPECT_FALSE(cfg.Validate().ok()) << bad;
  }
}

TEST(SimConfigValidateTest, RejectsNegativeParallelism) {
  SimConfig cfg;
  cfg.num_threads = -1;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SimConfig{};
  cfg.num_shards = -2;
  EXPECT_FALSE(cfg.Validate().ok());

  // 0 is the documented "derive" value for both.
  cfg = SimConfig{};
  cfg.num_threads = 0;
  cfg.num_shards = 0;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(SimConfigValidateTest, RejectsBadRates) {
  SimConfig cfg;
  cfg.alpha = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SimConfig{};
  cfg.reneging_beta = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(SimConfigValidateDeathTest, SimulatorConstructorAbortsOnInvalidConfig) {
  GeneratorConfig gcfg;
  gcfg.grid_rows = 4;
  gcfg.grid_cols = 4;
  gcfg.orders_per_day = 50;
  NycLikeGenerator gen(gcfg);
  Workload day = gen.GenerateDay(0, 5);
  StraightLineCostModel cost(11.0, 1.3);
  SimConfig bad;
  bad.batch_interval = -3.0;
  EXPECT_DEATH_IF_SUPPORTED(
      { Simulator sim(bad, day, gen.grid(), cost, nullptr); },
      "invalid SimConfig");
}

// ------------------------------------------------------- DispatcherRegistry

TEST(DispatcherRegistryTest, RosterContainsEveryBuiltin) {
  std::vector<std::string> names = DispatcherRegistry::Global().Names();
  for (const char* expected :
       {"IRG", "LS", "LTG", "NEAR", "POLAR", "RAND", "SHORT", "UPPER"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(DispatcherRegistryTest, CreatesFromPlainAndParameterisedSpecs) {
  const DispatcherRegistry& registry = DispatcherRegistry::Global();
  auto irg = registry.Create("IRG");
  ASSERT_TRUE(irg.ok()) << irg.status();
  EXPECT_EQ((*irg)->name(), "IRG");

  auto ls = registry.Create("LS:max_sweeps=8");
  ASSERT_TRUE(ls.ok()) << ls.status();
  EXPECT_EQ((*ls)->name(), "LS");

  auto rand = registry.Create("RAND:seed=42");
  ASSERT_TRUE(rand.ok()) << rand.status();
  EXPECT_EQ((*rand)->name(), "RAND");

  // Whitespace around the name, keys and values is tolerated.
  auto spaced = registry.Create("  LS : max_sweeps = 4 ");
  ASSERT_TRUE(spaced.ok()) << spaced.status();
  EXPECT_EQ((*spaced)->name(), "LS");
}

TEST(DispatcherRegistryTest, UnknownNameFailsListingTheRoster) {
  auto d = DispatcherRegistry::Global().Create("NOPE");
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
  // The error names the known roster so a typo is a one-glance fix.
  EXPECT_NE(d.status().message().find("IRG"), std::string::npos);
  EXPECT_NE(d.status().message().find("UPPER"), std::string::npos);
}

TEST(DispatcherRegistryTest, BadParametersFailWithDeclaredNames) {
  const DispatcherRegistry& registry = DispatcherRegistry::Global();

  auto unknown_param = registry.Create("LS:bogus=1");
  ASSERT_FALSE(unknown_param.ok());
  EXPECT_NE(unknown_param.status().message().find("max_sweeps"),
            std::string::npos);

  auto param_on_paramless = registry.Create("IRG:seed=1");
  ASSERT_FALSE(param_on_paramless.ok());
  EXPECT_NE(param_on_paramless.status().message().find("no parameter"),
            std::string::npos);

  auto bad_value = registry.Create("LS:max_sweeps=abc");
  ASSERT_FALSE(bad_value.ok());
  EXPECT_EQ(bad_value.status().code(), StatusCode::kInvalidArgument);

  auto duplicate = registry.Create("LS:max_sweeps=2,max_sweeps=3");
  ASSERT_FALSE(duplicate.ok());
  EXPECT_NE(duplicate.status().message().find("duplicate"), std::string::npos);

  auto malformed = registry.Create("LS:max_sweeps");
  ASSERT_FALSE(malformed.ok());

  auto empty_name = registry.Create("  ");
  ASSERT_FALSE(empty_name.ok());
}

TEST(DispatcherRegistryTest, Int64ParamsKeepFullFidelity) {
  const DispatcherRegistry& registry = DispatcherRegistry::Global();
  // Above 2^53: would be corrupted by a double round-trip.
  auto big = registry.Create("RAND:seed=9007199254740993");
  EXPECT_TRUE(big.ok()) << big.status();

  // Beyond int64: rejected loudly, never clamped to LLONG_MAX.
  auto overflow = registry.Create("RAND:seed=99999999999999999999");
  ASSERT_FALSE(overflow.ok());
}

TEST(DispatcherRegistryTest, TraitsAndLegacyShim) {
  const DispatcherRegistry& registry = DispatcherRegistry::Global();
  EXPECT_TRUE(registry.RequiresZeroPickupTravel("UPPER"));
  EXPECT_FALSE(registry.RequiresZeroPickupTravel("IRG"));
  EXPECT_TRUE(registry.HasParam("RAND", "seed"));
  EXPECT_FALSE(registry.HasParam("RAND", "max_sweeps"));

  // The legacy MakeDispatcherByName is now a shim over the registry, and
  // keeps the full uint64 seed domain (two's-complement round-trip).
  EXPECT_NE(MakeDispatcherByName("LS", 1, 4), nullptr);
  EXPECT_NE(MakeDispatcherByName("RAND", 0x8000000000000001ull), nullptr);
  EXPECT_EQ(MakeDispatcherByName("NOPE"), nullptr);
}

/// Minimal dispatcher for the self-registration test.
class NullDispatcher final : public Dispatcher {
 public:
  std::string name() const override { return "NULL_TEST"; }
  void Dispatch(const BatchContext&, std::vector<Assignment>*) override {}
};

TEST(DispatcherRegistryTest, SelfRegistrationAndDuplicateRejection) {
  DispatcherRegistry& registry = DispatcherRegistry::Global();
  Status first = registry.Register(
      "NULL_TEST", {}, [](const DispatcherParams&) {
        return std::make_unique<NullDispatcher>();
      });
  ASSERT_TRUE(first.ok()) << first;
  EXPECT_TRUE(registry.Known("NULL_TEST"));

  auto d = registry.Create("NULL_TEST");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->name(), "NULL_TEST");

  // First registration wins; a duplicate is rejected, not overwritten.
  Status dup = registry.Register(
      "NULL_TEST", {}, [](const DispatcherParams&) {
        return MakeIrgDispatcher();
      });
  EXPECT_EQ(dup.code(), StatusCode::kFailedPrecondition);
  auto still = registry.Create("NULL_TEST");
  ASSERT_TRUE(still.ok());
  EXPECT_EQ((*still)->name(), "NULL_TEST");
}

// ------------------------------------------------------------- tiny fixture

/// One small generated day shared by the builder/chain/runner tests.
class ApiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig gcfg;
    gcfg.grid_rows = 8;
    gcfg.grid_cols = 8;
    gcfg.orders_per_day = 3000;
    gcfg.seed = 20190417;
    builder_ = new SimulationBuilder();
    builder_->GenerateNycDay(/*day_index=*/1, /*num_drivers=*/40, gcfg)
        .WithOracleForecast()
        .BatchInterval(30.0)
        .HorizonSeconds(4 * 3600.0);
  }
  static void TearDownTestSuite() {
    delete builder_;
    builder_ = nullptr;
  }

  static SimulationBuilder* builder_;
};

SimulationBuilder* ApiTest::builder_ = nullptr;

void ExpectSameAggregates(const SimResult& want, const SimResult& got,
                          const std::string& label) {
  EXPECT_EQ(want.served_orders, got.served_orders) << label;
  EXPECT_EQ(want.reneged_orders, got.reneged_orders) << label;
  EXPECT_EQ(want.cancelled_orders, got.cancelled_orders) << label;
  EXPECT_EQ(want.total_orders, got.total_orders) << label;
  EXPECT_EQ(want.num_batches, got.num_batches) << label;
  EXPECT_EQ(want.total_revenue, got.total_revenue) << label;
  EXPECT_EQ(want.served_wait_seconds.count(), got.served_wait_seconds.count())
      << label;
  EXPECT_EQ(want.served_wait_seconds.mean(), got.served_wait_seconds.mean())
      << label;
  EXPECT_EQ(want.served_wait_seconds.variance(),
            got.served_wait_seconds.variance())
      << label;
  EXPECT_EQ(want.driver_idle_seconds.mean(), got.driver_idle_seconds.mean())
      << label;
  EXPECT_EQ(want.idle_error.count(), got.idle_error.count()) << label;
  EXPECT_EQ(want.idle_error.Mae(), got.idle_error.Mae()) << label;
}

// --------------------------------------------------------- SimulationBuilder

TEST_F(ApiTest, BuildWithoutWorkloadFails) {
  StatusOr<Simulation> sim = SimulationBuilder().Build();
  ASSERT_FALSE(sim.ok());
  EXPECT_EQ(sim.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(sim.status().message().find("workload"), std::string::npos);
}

TEST_F(ApiTest, BuildRejectsInvalidConfig) {
  SimulationBuilder bad = *builder_;
  bad.BatchInterval(0.0);
  StatusOr<Simulation> sim = bad.Build();
  ASSERT_FALSE(sim.ok());
  EXPECT_NE(sim.status().message().find("batch_interval"), std::string::npos);
}

TEST_F(ApiTest, BuildRejectsForecastGridMismatch) {
  // An oracle forecast for a 4x4 grid day cannot drive an 8x8 simulation.
  GeneratorConfig small;
  small.grid_rows = 4;
  small.grid_cols = 4;
  small.orders_per_day = 200;
  StatusOr<Simulation> tiny = SimulationBuilder()
                                  .GenerateNycDay(0, 5, small)
                                  .WithOracleForecast()
                                  .Build();
  ASSERT_TRUE(tiny.ok()) << tiny.status();

  SimulationBuilder mismatched = *builder_;
  mismatched.WithForecast(*tiny->forecast());
  StatusOr<Simulation> sim = mismatched.Build();
  ASSERT_FALSE(sim.ok());
  EXPECT_NE(sim.status().message().find("regions"), std::string::npos);
}

TEST_F(ApiTest, RunBySpecMatchesDirectEngineRun) {
  StatusOr<Simulation> sim = builder_->Build();
  ASSERT_TRUE(sim.ok()) << sim.status();

  StatusOr<SimResult> through_api = sim->Run("LS:max_sweeps=16");
  ASSERT_TRUE(through_api.ok()) << through_api.status();
  ASSERT_GT(through_api->served_orders, 0);

  // The same run hand-wired through the engine — the API is assembly only.
  SimConfig cfg = sim->config();
  Simulator engine(cfg, sim->workload(), sim->grid(), sim->travel_model(),
                   sim->forecast());
  auto ls = MakeLocalSearchDispatcher(16);
  SimResult direct = engine.Run(*ls);
  ExpectSameAggregates(direct, *through_api, "LS builder vs direct");
}

TEST_F(ApiTest, RunUnknownSpecFailsListingRoster) {
  StatusOr<Simulation> sim = builder_->Build();
  ASSERT_TRUE(sim.ok());
  StatusOr<SimResult> r = sim->Run("TYPO:seed=1");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("known dispatchers"), std::string::npos);
}

TEST_F(ApiTest, UpperRunsWithZeroPickupTraitApplied) {
  StatusOr<Simulation> sim = builder_->Build();
  ASSERT_TRUE(sim.ok());
  // The caller never touches zero_pickup_travel; the registry trait does.
  StatusOr<SimResult> upper = sim->Run("UPPER");
  ASSERT_TRUE(upper.ok()) << upper.status();
  EXPECT_GT(upper->served_orders, 0);
}

// ------------------------------------------------------------ ObserverChain

/// Appends (observer_id, hook_tag) to a shared log on every hook.
class RecordingObserver final : public SimObserver {
 public:
  RecordingObserver(int id, std::vector<std::pair<int, char>>* log)
      : id_(id), log_(log) {}

  void OnBatchBuilt(double, double, const BatchContext&) override {
    log_->push_back({id_, 'b'});
  }
  void OnDispatchDone(double, double,
                      const std::vector<Assignment>&) override {
    log_->push_back({id_, 'd'});
  }
  void OnAssignmentApplied(double, const AssignmentEvent&) override {
    log_->push_back({id_, 'a'});
  }
  void OnRiderReneged(double, const Order&) override {
    log_->push_back({id_, 'r'});
  }
  void OnBatchEnd(double) override { log_->push_back({id_, 'e'}); }
  void OnRunEnd(double, int64_t) override { log_->push_back({id_, 'z'}); }

 private:
  int id_;
  std::vector<std::pair<int, char>>* log_;
};

TEST_F(ApiTest, ObserverChainForwardsEveryEventInRegistrationOrder) {
  std::vector<std::pair<int, char>> log;
  RecordingObserver first(1, &log);
  auto second = std::make_unique<RecordingObserver>(2, &log);

  ObserverChain chain;
  chain.Add(&first).Own(std::move(second)).Add(nullptr);  // null ignored

  StatusOr<Simulation> sim = builder_->Build();
  ASSERT_TRUE(sim.ok());
  StatusOr<SimResult> r = sim->Run("NEAR", &chain);
  ASSERT_TRUE(r.ok()) << r.status();

  // Both links saw every event, pairwise: for each engine event the first
  // link fires before the second, and the hook tags agree.
  ASSERT_FALSE(log.empty());
  ASSERT_EQ(log.size() % 2, 0u);
  for (size_t i = 0; i < log.size(); i += 2) {
    EXPECT_EQ(log[i].first, 1) << "event " << i;
    EXPECT_EQ(log[i + 1].first, 2) << "event " << i;
    EXPECT_EQ(log[i].second, log[i + 1].second) << "event " << i;
  }
  // The log ends with OnRunEnd and contains batch/dispatch/apply events.
  EXPECT_EQ(log.back().second, 'z');
  EXPECT_NE(log[0].second, 'z');
}

// --------------------------------------------------------- ExperimentRunner

std::vector<RunSpec> DeterminismSpecs() {
  std::vector<RunSpec> specs;
  specs.emplace_back("IRG");
  specs.emplace_back("RAND:seed=7");
  specs.emplace_back("LS:max_sweeps=2", "LS-shallow");
  specs.emplace_back("NEAR");
  RunSpec seeded("RAND", "RAND-replicated");
  seeded.replication_seed = 7;
  specs.push_back(seeded);
  return specs;
}

TEST_F(ApiTest, RunnerIsBitIdenticalAcrossRunnerThreadCounts) {
  StatusOr<Simulation> sim = builder_->Build();
  ASSERT_TRUE(sim.ok());

  ExperimentRunner serial(*sim, /*num_threads=*/1);
  StatusOr<std::vector<RunResult>> want = serial.RunAll(DeterminismSpecs());
  ASSERT_TRUE(want.ok()) << want.status();
  ASSERT_EQ(want->size(), 5u);
  for (const RunResult& r : *want) {
    EXPECT_GT(r.result.served_orders, 0) << r.label;
  }

  ExperimentRunner threaded(*sim, /*num_threads=*/4);
  StatusOr<std::vector<RunResult>> got = threaded.RunAll(DeterminismSpecs());
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(got->size(), want->size());
  for (size_t i = 0; i < want->size(); ++i) {
    EXPECT_EQ((*want)[i].label, (*got)[i].label);
    ExpectSameAggregates((*want)[i].result, (*got)[i].result,
                         (*want)[i].label + " @4 runner threads");
  }

  // replication_seed=7 on a bare "RAND" spec equals the explicit
  // "RAND:seed=7" spec, bit for bit.
  ExpectSameAggregates((*want)[1].result, (*want)[4].result,
                       "replication seed vs explicit seed");
}

TEST_F(ApiTest, RunnerFailsFastOnUnknownSpec) {
  StatusOr<Simulation> sim = builder_->Build();
  ASSERT_TRUE(sim.ok());
  ExperimentRunner runner(*sim);
  StatusOr<std::vector<RunResult>> results =
      runner.RunAll({RunSpec("IRG"), RunSpec("TYPO")});
  ASSERT_FALSE(results.ok());
  EXPECT_NE(results.status().message().find("known dispatchers"),
            std::string::npos);
}

TEST_F(ApiTest, RunnerAppliesConfigOverridesAndScenarioChoice) {
  // A script that cancels a handful of early orders.
  ScenarioScript script;
  for (OrderId id = 0; id < 40; ++id) script.Cancel(600.0 + id, id);
  SimulationBuilder with_scenario = *builder_;
  with_scenario.WithScenario(std::move(script));
  StatusOr<Simulation> sim = with_scenario.Build();
  ASSERT_TRUE(sim.ok());

  RunSpec scripted("NEAR", "scripted");
  RunSpec unscripted("NEAR", "unscripted");
  unscripted.use_scenario = false;
  RunSpec half_horizon("NEAR", "half");
  SimConfig half_cfg = sim->config();
  half_cfg.horizon_seconds /= 2;
  half_horizon.config = half_cfg;

  ExperimentRunner runner(*sim);
  StatusOr<std::vector<RunResult>> results =
      runner.RunAll({scripted, unscripted, half_horizon});
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_GT((*results)[0].result.cancelled_orders, 0);
  EXPECT_EQ((*results)[1].result.cancelled_orders, 0);
  EXPECT_LT((*results)[2].result.num_batches,
            (*results)[0].result.num_batches);

  // An invalid per-spec config is caught before anything runs.
  RunSpec bad("IRG");
  SimConfig bad_cfg = sim->config();
  bad_cfg.window_seconds = -5.0;
  bad.config = bad_cfg;
  StatusOr<std::vector<RunResult>> invalid = runner.RunAll({bad});
  ASSERT_FALSE(invalid.ok());
  EXPECT_NE(invalid.status().message().find("window_seconds"),
            std::string::npos);
}

TEST_F(ApiTest, RunResultsSerialiseToJson) {
  StatusOr<Simulation> sim = builder_->Build();
  ASSERT_TRUE(sim.ok());
  ExperimentRunner runner(*sim);
  StatusOr<std::vector<RunResult>> results =
      runner.RunAll({RunSpec("NEAR", "baseline")});
  ASSERT_TRUE(results.ok());
  std::string json = RunResultsToJson(*results);
  EXPECT_NE(json.find("\"runs\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"baseline\""), std::string::npos);
  EXPECT_NE(json.find("\"dispatcher\": \"NEAR\""), std::string::npos);
  EXPECT_NE(json.find("\"served\""), std::string::npos);
}

}  // namespace
}  // namespace mrvd
