// The binary order-trace format and its streaming ingestion path:
// writer/reader round-trips, the TLC-CSV converter against a direct parse,
// header/version/truncation corruption handling, refill-on-drain buffer
// boundaries down to one byte, the OrderSource seam, and the headline
// guarantee — a streamed run is bit-identical to a materialised run of the
// same trace across the dispatcher roster and thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/api.h"
#include "campaign/workload_catalog.h"
#include "dispatch/dispatchers.h"
#include "geo/travel.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/order_source.h"
#include "workload/order_stream.h"
#include "workload/tlc_parser.h"

namespace mrvd {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("mrvd_order_stream_test_" + std::to_string(getpid()) + "_" + name))
      .string();
}

std::string CsvFixturePath() {
  return std::string(MRVD_TEST_DATA_DIR) + "/tlc_trips_sample.csv";
}

/// A small deterministic workload with non-trivial join times and
/// deadlines; every double should survive the trace bit-for-bit.
Workload MakeWorkload(int num_orders, int num_drivers) {
  Workload w;
  Rng rng(7);
  double t = 0.0;
  for (int i = 0; i < num_orders; ++i) {
    Order o;
    o.id = i;
    o.request_time = t;
    o.pickup = LatLon{rng.Uniform(kNycBoundingBox.lat_min,
                                  kNycBoundingBox.lat_max),
                      rng.Uniform(kNycBoundingBox.lon_min,
                                  kNycBoundingBox.lon_max)};
    o.dropoff = LatLon{rng.Uniform(kNycBoundingBox.lat_min,
                                   kNycBoundingBox.lat_max),
                       rng.Uniform(kNycBoundingBox.lon_min,
                                   kNycBoundingBox.lon_max)};
    o.pickup_deadline = t + 120.0 + rng.Uniform(1.0, 10.0);
    w.orders.push_back(o);
    t += rng.Exponential(0.5);  // non-decreasing, frequently equal-free
  }
  for (int j = 0; j < num_drivers; ++j) {
    DriverSpec d;
    d.id = j;
    d.origin = LatLon{rng.Uniform(kNycBoundingBox.lat_min,
                                  kNycBoundingBox.lat_max),
                      rng.Uniform(kNycBoundingBox.lon_min,
                                  kNycBoundingBox.lon_max)};
    d.join_time = j % 3 == 0 ? 600.0 : 0.0;
    w.drivers.push_back(d);
  }
  w.horizon_seconds = t + 1800.0;
  return w;
}

void ExpectSameOrders(const std::vector<Order>& a,
                      const std::vector<Order>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "order " << i;
    EXPECT_EQ(a[i].request_time, b[i].request_time) << "order " << i;
    EXPECT_EQ(a[i].pickup.lat, b[i].pickup.lat) << "order " << i;
    EXPECT_EQ(a[i].pickup.lon, b[i].pickup.lon) << "order " << i;
    EXPECT_EQ(a[i].dropoff.lat, b[i].dropoff.lat) << "order " << i;
    EXPECT_EQ(a[i].dropoff.lon, b[i].dropoff.lon) << "order " << i;
    EXPECT_EQ(a[i].pickup_deadline, b[i].pickup_deadline) << "order " << i;
  }
}

void ExpectSameDrivers(const std::vector<DriverSpec>& a,
                       const std::vector<DriverSpec>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "driver " << i;
    EXPECT_EQ(a[i].origin.lat, b[i].origin.lat) << "driver " << i;
    EXPECT_EQ(a[i].origin.lon, b[i].origin.lon) << "driver " << i;
    EXPECT_EQ(a[i].join_time, b[i].join_time) << "driver " << i;
  }
}

/// RAII temp trace of a workload.
class TraceFile {
 public:
  explicit TraceFile(const Workload& w, const std::string& name = "rt.trace")
      : path_(TempPath(name)) {
    Status st = WriteOrderTrace(path_, w);
    EXPECT_TRUE(st.ok()) << st;
  }
  ~TraceFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(OrderTraceFormatTest, RoundTripsWorkloadBitExactly) {
  Workload w = MakeWorkload(/*num_orders=*/200, /*num_drivers=*/17);
  TraceFile trace(w);

  StatusOr<OrderTraceInfo> info = ReadOrderTraceInfo(trace.path());
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, kOrderTraceVersion);
  EXPECT_EQ(info->order_count, 200);
  EXPECT_EQ(info->driver_count, 17);
  EXPECT_EQ(info->horizon_seconds, w.horizon_seconds);
  EXPECT_EQ(info->first_request_time, w.orders.front().request_time);
  EXPECT_EQ(info->last_request_time, w.orders.back().request_time);
  EXPECT_EQ(info->file_bytes,
            static_cast<int64_t>(kOrderTraceHeaderBytes +
                                 17 * kDriverRecordBytes +
                                 200 * kOrderRecordBytes));
  EXPECT_EQ(static_cast<uint64_t>(info->file_bytes),
            std::filesystem::file_size(trace.path()));

  StatusOr<Workload> back = ReadOrderTrace(trace.path());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->horizon_seconds, w.horizon_seconds);
  ExpectSameOrders(w.orders, back->orders);
  ExpectSameDrivers(w.drivers, back->drivers);
}

TEST(OrderTraceFormatTest, ReadOrderTraceHonoursMaxOrders) {
  Workload w = MakeWorkload(50, 4);
  TraceFile trace(w);
  StatusOr<Workload> capped = ReadOrderTrace(trace.path(), /*max_orders=*/10);
  ASSERT_TRUE(capped.ok()) << capped.status();
  ASSERT_EQ(capped->orders.size(), 10u);
  w.orders.resize(10);
  ExpectSameOrders(w.orders, capped->orders);
}

TEST(OrderTraceFormatTest, EmptyTraceRoundTrips) {
  Workload w;
  w.horizon_seconds = 3600.0;
  TraceFile trace(w, "empty.trace");
  StatusOr<Workload> back = ReadOrderTrace(trace.path());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->orders.empty());
  EXPECT_TRUE(back->drivers.empty());
  EXPECT_EQ(back->horizon_seconds, 3600.0);
}

TEST(OrderStreamWriterTest, RejectsOutOfOrderAndLateDrivers) {
  const std::string path = TempPath("writer.trace");
  StatusOr<std::unique_ptr<OrderStreamWriter>> writer =
      OrderStreamWriter::Create(path, 3600.0);
  ASSERT_TRUE(writer.ok()) << writer.status();

  Order o;
  o.id = 0;
  o.request_time = 100.0;
  o.pickup_deadline = 230.0;
  ASSERT_TRUE((*writer)->AddOrder(o).ok());

  // Drivers precede orders on disk; adding one now must fail.
  EXPECT_FALSE((*writer)->AddDriver(DriverSpec{}).ok());

  o.request_time = 99.0;  // decreasing
  EXPECT_FALSE((*writer)->AddOrder(o).ok());
  o.request_time = 100.0;  // equal is fine
  EXPECT_TRUE((*writer)->AddOrder(o).ok());

  // Abandon without Finish(): neither the file nor its temp may remain.
  writer->reset();
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(OrderStreamWriterTest, DerivesHorizonWhenUnset) {
  Workload w = MakeWorkload(5, 1);
  const std::string path = TempPath("derived.trace");
  StatusOr<std::unique_ptr<OrderStreamWriter>> writer =
      OrderStreamWriter::Create(path, /*horizon_seconds=*/0.0);
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (const Order& o : w.orders) ASSERT_TRUE((*writer)->AddOrder(o).ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  StatusOr<OrderTraceInfo> info = ReadOrderTraceInfo(path);
  std::remove(path.c_str());
  ASSERT_TRUE(info.ok()) << info.status();
  // Last request plus the default 20-minute patience window.
  EXPECT_EQ(info->horizon_seconds, w.orders.back().request_time + 1200.0);
}

TEST(ConverterTest, MatchesDirectCsvParse) {
  TlcParseStats direct_stats;
  StatusOr<Workload> direct = ParseTlcCsv(CsvFixturePath(), /*num_drivers=*/8,
                                          TlcParseOptions{}, &direct_stats);
  ASSERT_TRUE(direct.ok()) << direct.status();

  const std::string path = TempPath("converted.trace");
  TlcParseStats stats;
  Status st = ConvertTlcCsvToTrace(CsvFixturePath(), path, /*num_drivers=*/8,
                                   TlcParseOptions{}, &stats);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(stats.rows_total, direct_stats.rows_total);
  EXPECT_EQ(stats.rows_bad, direct_stats.rows_bad);
  EXPECT_EQ(stats.rows_out_of_box, direct_stats.rows_out_of_box);
  EXPECT_EQ(stats.rows_kept, direct_stats.rows_kept);

  StatusOr<Workload> converted = ReadOrderTrace(path);
  std::remove(path.c_str());
  ASSERT_TRUE(converted.ok()) << converted.status();
  EXPECT_EQ(converted->horizon_seconds, direct->horizon_seconds);
  ExpectSameOrders(direct->orders, converted->orders);
  ExpectSameDrivers(direct->drivers, converted->drivers);
}

TEST(ConverterTest, MissingCsvLeavesNothingBehind) {
  const std::string path = TempPath("never.trace");
  Status st = ConvertTlcCsvToTrace(TempPath("no_such.csv"), path, 4);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

/// Byte-level fault injection on a freshly written valid trace.
class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = MakeWorkload(20, 3);
    path_ = TempPath("corrupt.trace");
    Status st = WriteOrderTrace(path_, workload_);
    ASSERT_TRUE(st.ok()) << st;
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void PatchBytes(int64_t offset, const void* bytes, size_t n) {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(offset);
    f.write(static_cast<const char*>(bytes), static_cast<std::streamsize>(n));
    ASSERT_TRUE(f.good());
  }

  void Truncate(int64_t new_size) {
    std::filesystem::resize_file(path_, static_cast<uintmax_t>(new_size));
  }

  Workload workload_;
  std::string path_;
};

TEST_F(CorruptionTest, BadMagicIsRejected) {
  const char junk = 'X';
  PatchBytes(0, &junk, 1);
  StatusOr<OrderTraceInfo> info = ReadOrderTraceInfo(path_);
  ASSERT_FALSE(info.ok());
  EXPECT_NE(info.status().ToString().find("magic"), std::string::npos)
      << info.status();
}

TEST_F(CorruptionTest, FutureVersionIsRejectedWithBothVersions) {
  const uint32_t future = kOrderTraceVersion + 6;
  PatchBytes(8, &future, sizeof(future));  // version field
  StatusOr<std::unique_ptr<OrderStreamReader>> reader =
      OrderStreamReader::Open(path_);
  ASSERT_FALSE(reader.ok());
  const std::string msg = reader.status().ToString();
  EXPECT_NE(msg.find("version 7"), std::string::npos) << msg;
  EXPECT_NE(msg.find("version 1"), std::string::npos) << msg;
}

TEST_F(CorruptionTest, TruncationIsDetectedAtOpen) {
  // Chop half an order record off the end: the expected size no longer
  // matches, and the error should say how much is missing.
  const auto full = static_cast<int64_t>(std::filesystem::file_size(path_));
  Truncate(full - static_cast<int64_t>(kOrderRecordBytes) - 7);
  StatusOr<std::unique_ptr<OrderStreamReader>> reader =
      OrderStreamReader::Open(path_);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("truncated"), std::string::npos)
      << reader.status();
}

TEST_F(CorruptionTest, TrailingBytesAreDetectedAtOpen) {
  std::ofstream f(path_, std::ios::app | std::ios::binary);
  f << "garbage";
  f.close();
  StatusOr<std::unique_ptr<OrderStreamReader>> reader =
      OrderStreamReader::Open(path_);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("trailing"), std::string::npos)
      << reader.status();
}

TEST_F(CorruptionTest, ShortHeaderIsRejected) {
  Truncate(static_cast<int64_t>(kOrderTraceHeaderBytes) - 1);
  StatusOr<OrderTraceInfo> info = ReadOrderTraceInfo(path_);
  ASSERT_FALSE(info.ok());
}

TEST_F(CorruptionTest, OutOfOrderRecordTripsStickyStatus) {
  // Rewind order #5's request time to before order #4's: the reader must
  // stop with an error rather than hand the engine a time-travelling order.
  const int64_t orders_offset = static_cast<int64_t>(
      kOrderTraceHeaderBytes + 3 * kDriverRecordBytes);
  const double bogus = workload_.orders[4].request_time - 1.0;
  PatchBytes(orders_offset + 5 * static_cast<int64_t>(kOrderRecordBytes) + 8,
             &bogus, sizeof(bogus));
  StatusOr<std::unique_ptr<OrderStreamReader>> reader =
      OrderStreamReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status();
  int64_t seen = 0;
  while ((*reader)->Peek() != nullptr) {
    (*reader)->Pop();
    ++seen;
  }
  EXPECT_EQ(seen, 5);
  EXPECT_FALSE((*reader)->status().ok());
  // Exhaustion and error are distinguishable: Peek() is null in both, but
  // only the error leaves status() non-OK.
  EXPECT_NE((*reader)->status().ToString().find("order"), std::string::npos);
}

TEST(OrderStreamReaderTest, RefillOnDrainWorksAtAllBufferBoundaries) {
  Workload w = MakeWorkload(64, 2);
  TraceFile trace(w, "buffers.trace");
  // One byte, one-under / exact / one-over a record, an exact multiple,
  // and a non-multiple larger than the order section.
  for (size_t buffer_bytes :
       {size_t{1}, kOrderRecordBytes - 1, kOrderRecordBytes,
        kOrderRecordBytes + 1, 4 * kOrderRecordBytes, size_t{10000}}) {
    SCOPED_TRACE("buffer_bytes=" + std::to_string(buffer_bytes));
    StatusOr<std::unique_ptr<OrderStreamReader>> reader =
        OrderStreamReader::Open(trace.path(), buffer_bytes);
    ASSERT_TRUE(reader.ok()) << reader.status();
    ExpectSameDrivers(w.drivers, (*reader)->drivers());
    std::vector<Order> drained;
    while (const Order* o = (*reader)->Peek()) {
      drained.push_back(*o);
      (*reader)->Pop();
    }
    EXPECT_TRUE((*reader)->status().ok()) << (*reader)->status();
    EXPECT_EQ((*reader)->consumed(), 64);
    ExpectSameOrders(w.orders, drained);
  }
}

TEST(OrderStreamReaderTest, PeekIsStableAndRewindReplays) {
  Workload w = MakeWorkload(10, 1);
  TraceFile trace(w, "rewind.trace");
  StatusOr<std::unique_ptr<OrderStreamReader>> reader =
      OrderStreamReader::Open(trace.path());
  ASSERT_TRUE(reader.ok()) << reader.status();

  const Order* first = (*reader)->Peek();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first, (*reader)->Peek()) << "Peek must not advance";
  EXPECT_EQ((*reader)->consumed(), 0);
  (*reader)->Pop();
  EXPECT_EQ((*reader)->consumed(), 1);

  while ((*reader)->Peek() != nullptr) (*reader)->Pop();
  EXPECT_EQ((*reader)->consumed(), 10);

  ASSERT_TRUE((*reader)->Rewind().ok());
  EXPECT_EQ((*reader)->consumed(), 0);
  std::vector<Order> replay;
  while (const Order* o = (*reader)->Peek()) {
    replay.push_back(*o);
    (*reader)->Pop();
  }
  ExpectSameOrders(w.orders, replay);
}

TEST(OrderSourceTest, StreamingAndMaterializedAgree) {
  Workload w = MakeWorkload(30, 2);
  TraceFile trace(w, "source.trace");
  for (int64_t cap : {int64_t{0}, int64_t{7}, int64_t{100}}) {
    SCOPED_TRACE("cap=" + std::to_string(cap));
    MaterializedOrderSource mat(w.orders, cap);
    StatusOr<std::unique_ptr<OrderStreamReader>> reader =
        OrderStreamReader::Open(trace.path());
    ASSERT_TRUE(reader.ok()) << reader.status();
    StreamingOrderSource stream(std::move(reader).value(), cap);

    const int64_t expect = cap == 0 ? 30 : std::min<int64_t>(cap, 30);
    EXPECT_EQ(mat.total_orders(), expect);
    EXPECT_EQ(stream.total_orders(), expect);
    int64_t n = 0;
    while (true) {
      const Order* a = mat.Peek();
      const Order* b = stream.Peek();
      ASSERT_EQ(a == nullptr, b == nullptr) << "at order " << n;
      if (a == nullptr) break;
      EXPECT_EQ(a->id, b->id);
      EXPECT_EQ(a->request_time, b->request_time);
      EXPECT_EQ(mat.remaining(), stream.remaining());
      mat.Pop();
      stream.Pop();
      ++n;
    }
    EXPECT_EQ(n, expect);
    EXPECT_EQ(mat.remaining(), 0);
    EXPECT_EQ(stream.remaining(), 0);
    ASSERT_TRUE(stream.Rewind().ok());
    EXPECT_EQ(stream.remaining(), expect);
  }
}

/// The headline guarantee: one trace, two ingestion paths, identical
/// simulation — across dispatchers and engine thread counts.
TEST(StreamedRunTest, BitIdenticalToMaterialisedAcrossRosterAndThreads) {
  GeneratorConfig gen_cfg;
  gen_cfg.orders_per_day = 800.0;
  NycLikeGenerator generator(gen_cfg);
  Workload day = generator.GenerateDay(/*day_index=*/2, /*num_drivers=*/25);
  TraceFile trace(day, "sweep.trace");

  SimConfig cfg;
  cfg.horizon_seconds = 7200.0;
  cfg.batch_interval = 20.0;

  StatusOr<Simulation> materialised = SimulationBuilder()
                                          .WithWorkload(day, generator.grid())
                                          .WithConfig(cfg)
                                          .Build();
  ASSERT_TRUE(materialised.ok()) << materialised.status();
  StatusOr<Simulation> streamed = SimulationBuilder()
                                      .StreamTrace(trace.path(),
                                                   generator.grid())
                                      .WithConfig(cfg)
                                      .Build();
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  EXPECT_TRUE(streamed->streaming());
  EXPECT_FALSE(materialised->streaming());

  for (const char* name : {"NEAR", "IRG", "LS", "SHORT"}) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(std::string(name) + "@" + std::to_string(threads));
      SimConfig run_cfg = cfg;
      run_cfg.num_threads = threads;
      auto d1 = MakeDispatcherByName(name);
      auto d2 = MakeDispatcherByName(name);
      StatusOr<SimResult> a =
          materialised->RunWith(run_cfg, *d1, /*scenario=*/nullptr);
      StatusOr<SimResult> b =
          streamed->RunWith(run_cfg, *d2, /*scenario=*/nullptr);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      EXPECT_EQ(a->served_orders, b->served_orders);
      EXPECT_EQ(a->reneged_orders, b->reneged_orders);
      EXPECT_EQ(a->total_orders, b->total_orders);
      EXPECT_EQ(a->num_batches, b->num_batches);
      EXPECT_EQ(a->total_revenue, b->total_revenue);
      EXPECT_EQ(a->served_wait_seconds.mean(), b->served_wait_seconds.mean());
      EXPECT_EQ(a->driver_idle_seconds.mean(), b->driver_idle_seconds.mean());
    }
  }
}

TEST(StreamedRunTest, MaxOrdersCapMatchesCappedMaterialisation) {
  GeneratorConfig gen_cfg;
  gen_cfg.orders_per_day = 400.0;
  NycLikeGenerator generator(gen_cfg);
  Workload day = generator.GenerateDay(1, 15);
  TraceFile trace(day, "cap.trace");

  Workload capped = day;
  capped.orders.resize(100);

  SimConfig cfg;
  cfg.horizon_seconds = 7200.0;
  cfg.batch_interval = 20.0;
  StatusOr<Simulation> a = SimulationBuilder()
                               .WithWorkload(std::move(capped),
                                             generator.grid())
                               .WithConfig(cfg)
                               .Build();
  ASSERT_TRUE(a.ok()) << a.status();
  StatusOr<Simulation> b = SimulationBuilder()
                               .StreamTrace(trace.path(), generator.grid(),
                                            /*max_orders=*/100)
                               .WithConfig(cfg)
                               .Build();
  ASSERT_TRUE(b.ok()) << b.status();
  auto d1 = MakeDispatcherByName("NEAR");
  auto d2 = MakeDispatcherByName("NEAR");
  StatusOr<SimResult> ra = a->RunWith(cfg, *d1, nullptr);
  StatusOr<SimResult> rb = b->RunWith(cfg, *d2, nullptr);
  ASSERT_TRUE(ra.ok()) << ra.status();
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_EQ(ra->served_orders, rb->served_orders);
  EXPECT_EQ(ra->total_revenue, rb->total_revenue);
  EXPECT_EQ(ra->total_orders, rb->total_orders);
}

TEST(StreamedRunTest, OracleForecastIsRejectedForStreams) {
  Workload day = MakeWorkload(20, 3);
  TraceFile trace(day, "oracle.trace");
  StatusOr<Simulation> sim = SimulationBuilder()
                                 .StreamTrace(trace.path(), MakeNycGrid16x16())
                                 .WithOracleForecast()
                                 .Build();
  ASSERT_FALSE(sim.ok());
  EXPECT_NE(sim.status().ToString().find("OracleForecast"), std::string::npos)
      << sim.status();
}

TEST(StreamedRunTest, MissingTraceFailsAtBuild) {
  StatusOr<Simulation> sim =
      SimulationBuilder()
          .StreamTrace(TempPath("no_such.trace"), MakeNycGrid16x16())
          .Build();
  EXPECT_FALSE(sim.ok());
}

TEST(TraceCatalogTest, TraceEntryBuildsAndTogglesMaterialisation) {
  Workload day = MakeWorkload(120, 6);
  TraceFile trace(day, "catalog.trace");
  const std::string spec =
      "trace:path=" + trace.path() + ",batch_interval=30";

  StatusOr<Simulation> streamed = WorkloadCatalog::Global().Build(spec);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  EXPECT_TRUE(streamed->streaming());

  // The env toggle flips the ingestion path without touching the spec (so
  // campaign cell keys — and manifests — stay identical either way).
  ASSERT_EQ(setenv("MRVD_TRACE_MATERIALIZE", "1", 1), 0);
  StatusOr<Simulation> materialised = WorkloadCatalog::Global().Build(spec);
  unsetenv("MRVD_TRACE_MATERIALIZE");
  ASSERT_TRUE(materialised.ok()) << materialised.status();
  EXPECT_FALSE(materialised->streaming());

  auto d1 = MakeDispatcherByName("NEAR");
  auto d2 = MakeDispatcherByName("NEAR");
  StatusOr<SimResult> a =
      streamed->RunWith(streamed->config(), *d1, nullptr);
  StatusOr<SimResult> b =
      materialised->RunWith(materialised->config(), *d2, nullptr);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->served_orders, b->served_orders);
  EXPECT_EQ(a->total_revenue, b->total_revenue);
  EXPECT_EQ(a->total_orders, 120);
}

}  // namespace
}  // namespace mrvd
