#include <gtest/gtest.h>

#include <algorithm>

#include "matching/bipartite.h"
#include "matching/hungarian.h"
#include "util/rng.h"

namespace mrvd {
namespace {

// ------------------------------------------------------------- Hungarian

TEST(HungarianTest, SolvesKnown3x3) {
  // Classic instance: optimal assignment cost is 5 (0->1, 1->0, 2->2).
  std::vector<double> cost = {4, 1, 3,
                              2, 0, 5,
                              3, 2, 2};
  auto r = SolveMinCostAssignment(cost, 3, 3);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(r->total_cost, 5.0);
  EXPECT_EQ(r->row_to_col[0], 1);
  EXPECT_EQ(r->row_to_col[1], 0);
  EXPECT_EQ(r->row_to_col[2], 2);
}

TEST(HungarianTest, RectangularMoreColumns) {
  std::vector<double> cost = {10, 1, 10,
                              1, 10, 10};
  auto r = SolveMinCostAssignment(cost, 2, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->total_cost, 2.0);
  EXPECT_EQ(r->row_to_col[0], 1);
  EXPECT_EQ(r->row_to_col[1], 0);
}

TEST(HungarianTest, RectangularMoreRows) {
  // Only 1 column: exactly one row gets it (the cheapest).
  std::vector<double> cost = {5, 1, 3};
  auto r = SolveMinCostAssignment(cost, 3, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->total_cost, 1.0);
  EXPECT_EQ(r->row_to_col[0], -1);
  EXPECT_EQ(r->row_to_col[1], 0);
  EXPECT_EQ(r->row_to_col[2], -1);
}

TEST(HungarianTest, ForbiddenPairsAvoided) {
  std::vector<double> cost = {kForbiddenCost, 2,
                              3, kForbiddenCost};
  auto r = SolveMinCostAssignment(cost, 2, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_to_col[0], 1);
  EXPECT_EQ(r->row_to_col[1], 0);
  EXPECT_DOUBLE_EQ(r->total_cost, 5.0);
}

TEST(HungarianTest, InfeasibleRowLeftUnassigned) {
  std::vector<double> cost = {kForbiddenCost, kForbiddenCost,
                              1, kForbiddenCost};
  auto r = SolveMinCostAssignment(cost, 2, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_to_col[0], -1);  // nothing allowed for row 0
  EXPECT_EQ(r->row_to_col[1], 0);
}

TEST(HungarianTest, MaxWeightSelectsHeaviest) {
  std::vector<double> weight = {1, 9,
                                8, 2};
  auto r = SolveMaxWeightAssignment(weight, 2, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->total_cost, 17.0);
  EXPECT_EQ(r->row_to_col[0], 1);
  EXPECT_EQ(r->row_to_col[1], 0);
}

TEST(HungarianTest, DimensionValidation) {
  EXPECT_FALSE(SolveMinCostAssignment({1, 2, 3}, 2, 2).ok());
  EXPECT_FALSE(SolveMaxWeightAssignment({-1.0}, 1, 1).ok());
}

TEST(HungarianTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 4;
    std::vector<double> cost(n * n);
    for (auto& c : cost) c = rng.Uniform(0.0, 100.0);
    auto r = SolveMinCostAssignment(cost, n, n);
    ASSERT_TRUE(r.ok());
    // Brute force over all 24 permutations.
    std::vector<int> perm{0, 1, 2, 3};
    double best = 1e18;
    do {
      double t = 0;
      for (int i = 0; i < n; ++i) t += cost[static_cast<size_t>(i) * n + perm[static_cast<size_t>(i)]];
      best = std::min(best, t);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(r->total_cost, best, 1e-9);
  }
}

// ---------------------------------------------------------- Hopcroft–Karp

TEST(HopcroftKarpTest, PerfectMatchingExists) {
  BipartiteGraph g(3, 3);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  g.AddEdge(1, 1);
  g.AddEdge(2, 2);
  auto m = MaxCardinalityMatching(g);
  EXPECT_EQ(m.size, 3);
  // Forced structure: 1 must take 1, so 0 takes 0.
  EXPECT_EQ(m.left_match[1], 1);
  EXPECT_EQ(m.left_match[0], 0);
  EXPECT_EQ(m.left_match[2], 2);
}

TEST(HopcroftKarpTest, BottleneckLimitsMatching) {
  // All three lefts can only reach right 0.
  BipartiteGraph g(3, 2);
  g.AddEdge(0, 0);
  g.AddEdge(1, 0);
  g.AddEdge(2, 0);
  auto m = MaxCardinalityMatching(g);
  EXPECT_EQ(m.size, 1);
}

TEST(HopcroftKarpTest, AugmentingPathsFound) {
  // Greedy would match (0,0) and block; HK must augment to size 2.
  BipartiteGraph g(2, 2);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  auto m = MaxCardinalityMatching(g);
  EXPECT_EQ(m.size, 2);
  EXPECT_EQ(m.left_match[0], 1);
  EXPECT_EQ(m.left_match[1], 0);
}

TEST(HopcroftKarpTest, EmptyGraph) {
  BipartiteGraph g(3, 3);
  auto m = MaxCardinalityMatching(g);
  EXPECT_EQ(m.size, 0);
  for (int v : m.left_match) EXPECT_EQ(v, -1);
}

TEST(HopcroftKarpTest, MatchingIsConsistent) {
  Rng rng(5);
  BipartiteGraph g(20, 15);
  for (int i = 0; i < 60; ++i) {
    g.AddEdge(static_cast<int>(rng.UniformInt(0, 19)),
              static_cast<int>(rng.UniformInt(0, 14)));
  }
  auto m = MaxCardinalityMatching(g);
  int count = 0;
  for (int u = 0; u < 20; ++u) {
    int v = m.left_match[static_cast<size_t>(u)];
    if (v >= 0) {
      EXPECT_EQ(m.right_match[static_cast<size_t>(v)], u);
      ++count;
    }
  }
  EXPECT_EQ(count, m.size);
}

// ---------------------------------------------------------------- greedy

TEST(GreedyMatchTest, PicksLowestScoresFirst) {
  std::vector<WeightedPair> pairs = {
      {0, 0, 3.0}, {0, 1, 1.0}, {1, 0, 2.0}, {1, 1, 4.0}};
  auto sel = GreedyMatch(pairs);
  ASSERT_EQ(sel.size(), 2u);
  // (0,1) at 1.0 first, then (1,0) at 2.0.
  EXPECT_EQ(pairs[sel[0]].left, 0);
  EXPECT_EQ(pairs[sel[0]].right, 1);
  EXPECT_EQ(pairs[sel[1]].left, 1);
  EXPECT_EQ(pairs[sel[1]].right, 0);
}

TEST(GreedyMatchTest, EmptyInput) {
  EXPECT_TRUE(GreedyMatch({}).empty());
}

TEST(GreedyMatchTest, RespectsExclusivity) {
  std::vector<WeightedPair> pairs = {
      {0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 5.0}};
  auto sel = GreedyMatch(pairs);
  ASSERT_EQ(sel.size(), 2u);
  std::vector<char> lused(2, false), rused(2, false);
  for (size_t idx : sel) {
    EXPECT_FALSE(lused[static_cast<size_t>(pairs[idx].left)]);
    EXPECT_FALSE(rused[static_cast<size_t>(pairs[idx].right)]);
    lused[static_cast<size_t>(pairs[idx].left)] = true;
    rused[static_cast<size_t>(pairs[idx].right)] = true;
  }
}

TEST(GreedyMatchTest, StableOnTies) {
  std::vector<WeightedPair> pairs = {{0, 0, 1.0}, {1, 1, 1.0}, {0, 1, 1.0}};
  auto sel = GreedyMatch(pairs);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0], 0u);  // original order preserved among equal scores
  EXPECT_EQ(sel[1], 1u);
}

}  // namespace
}  // namespace mrvd
