// Unit tests for the staged engine's building blocks: the incremental
// region counters of FleetState/OrderBook must track the brute-force
// recounts the monolithic engine used to perform every batch, the
// BatchBuilder's shard-parallel materialisation must equal the serial
// fill, and the SimObserver hooks must fire consistently with the
// aggregates the MetricsCollector reports.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dispatch/dispatchers.h"
#include "geo/region_partitioner.h"
#include "geo/travel.h"
#include "sim/batch_builder.h"
#include "sim/engine.h"
#include "sim/fleet_state.h"
#include "sim/order_book.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace mrvd {
namespace {

// ------------------------------------------------------------ FleetState

class FleetStateTest : public ::testing::Test {
 protected:
  FleetStateTest() : grid_(kNycBoundingBox, 4, 4) {
    // Ten drivers spread over the bounding box.
    for (int j = 0; j < 10; ++j) {
      double frac = static_cast<double>(j) / 10.0;
      LatLon at{kNycBoundingBox.lat_min +
                    frac * (kNycBoundingBox.lat_max - kNycBoundingBox.lat_min),
                kNycBoundingBox.lon_min +
                    frac * (kNycBoundingBox.lon_max - kNycBoundingBox.lon_min)};
      workload_.drivers.push_back({j, at, 0.0});
    }
  }

  LatLon PointAt(double lat_frac, double lon_frac) const {
    return {kNycBoundingBox.lat_min +
                lat_frac * (kNycBoundingBox.lat_max - kNycBoundingBox.lat_min),
            kNycBoundingBox.lon_min +
                lon_frac * (kNycBoundingBox.lon_max - kNycBoundingBox.lon_min)};
  }

  /// Brute-force recount of both supply counters, exactly as the
  /// monolithic engine recomputed them per batch — extended with the
  /// scenario shift semantics: signed-off drivers are out of the supply,
  /// and a pending sign-off will not rejoin its dropoff region.
  void ExpectCountersMatchRecount(const FleetState& fleet, double now,
                                  double window) {
    std::vector<int64_t> available(static_cast<size_t>(grid_.num_regions()),
                                   0);
    std::vector<int32_t> rejoining(static_cast<size_t>(grid_.num_regions()),
                                   0);
    int64_t available_total = 0;
    for (const DriverState& d : fleet.drivers()) {
      if (d.signed_off) continue;
      if (!d.busy) {
        ++available[static_cast<size_t>(d.region)];
        ++available_total;
      } else if (!d.sign_off_pending && d.busy_until > now &&
                 d.busy_until <= now + window) {
        ++rejoining[static_cast<size_t>(d.busy_dest_region)];
      }
    }
    EXPECT_EQ(fleet.available_count(), available_total) << "now=" << now;
    for (int k = 0; k < grid_.num_regions(); ++k) {
      EXPECT_EQ(fleet.available_by_region()[static_cast<size_t>(k)],
                available[static_cast<size_t>(k)])
          << "region " << k << " now=" << now;
      EXPECT_EQ(fleet.rejoining_in_window()[static_cast<size_t>(k)],
                rejoining[static_cast<size_t>(k)])
          << "region " << k << " now=" << now;
    }
  }

  Grid grid_;
  Workload workload_;
};

TEST_F(FleetStateTest, IncrementalCountersMatchRecountAcrossLifecycle) {
  const double window = 1200.0;
  FleetState fleet(workload_, grid_);
  ExpectCountersMatchRecount(fleet, 0.0, window);

  // Three trips: one short, one ending inside the first window, one so long
  // it only enters the window after several batches.
  LatLon dest_a = PointAt(0.1, 0.9), dest_b = PointAt(0.9, 0.1),
         dest_c = PointAt(0.5, 0.5);
  fleet.MarkBusy(2, /*busy_until=*/100.0, dest_a, grid_.RegionOf(dest_a));
  fleet.MarkBusy(5, /*busy_until=*/900.0, dest_b, grid_.RegionOf(dest_b));
  fleet.MarkBusy(7, /*busy_until=*/1500.0, dest_c, grid_.RegionOf(dest_c));

  bool reassigned = false;
  for (double now = 30.0; now <= 2400.0; now += 30.0) {
    fleet.ReleaseFinished(now);
    fleet.AdvanceRejoinWindow(now, window);
    ExpectCountersMatchRecount(fleet, now, window);
    if (!reassigned && now >= 150.0) {
      // Driver 2 is free again: send it out on a second, long trip that is
      // beyond the current window and enters it later.
      ASSERT_FALSE(fleet.driver(2).busy);
      fleet.MarkBusy(2, now + window + 600.0, dest_b, grid_.RegionOf(dest_b));
      reassigned = true;
      ExpectCountersMatchRecount(fleet, now, window);
    }
  }
  // Everything completed: the fleet is fully available again.
  EXPECT_EQ(fleet.available_count(), 10);
  EXPECT_FALSE(fleet.HasBusyDrivers());
}

TEST_F(FleetStateTest, SignOnSignOffLifecycleKeepsIncrementalCounters) {
  const double window = 600.0;
  FleetState fleet(workload_, grid_);
  fleet.AdvanceRejoinWindow(0.0, window);
  ExpectCountersMatchRecount(fleet, 0.0, window);

  // Idle sign-off leaves the supply immediately; a second sign-off and a
  // sign-on of an on-duty driver are no-ops.
  EXPECT_TRUE(fleet.SignOff(1));
  EXPECT_FALSE(fleet.SignOff(1));
  EXPECT_FALSE(fleet.SignOn(4, 0.0));
  EXPECT_TRUE(fleet.driver(1).signed_off);
  EXPECT_EQ(fleet.available_count(), 9);
  ExpectCountersMatchRecount(fleet, 0.0, window);

  // Busy sign-off: driver 3 departs on a trip ending inside the rejoin
  // window, so it is counted as predicted supply — until the sign-off
  // removes it (the driver will not rejoin).
  LatLon dest = PointAt(0.8, 0.2);
  fleet.MarkBusy(3, /*busy_until=*/300.0, dest, grid_.RegionOf(dest));
  fleet.AdvanceRejoinWindow(30.0, window);
  EXPECT_EQ(
      fleet.rejoining_in_window()[static_cast<size_t>(grid_.RegionOf(dest))],
      1);
  EXPECT_TRUE(fleet.SignOff(3));
  EXPECT_TRUE(fleet.driver(3).sign_off_pending);
  ExpectCountersMatchRecount(fleet, 30.0, window);

  // The trip completes: the driver leaves instead of rejoining.
  fleet.ReleaseFinished(330.0);
  fleet.AdvanceRejoinWindow(330.0, window);
  EXPECT_TRUE(fleet.driver(3).signed_off);
  EXPECT_FALSE(fleet.driver(3).busy);
  EXPECT_EQ(fleet.available_count(), 8);
  ExpectCountersMatchRecount(fleet, 330.0, window);

  // Sign-ons re-enter incrementally at the driver's current location and
  // queue a fresh idle-time estimate; driver 3 rejoins where it dropped
  // off.
  fleet.CaptureIdleEstimates(nullptr);
  EXPECT_TRUE(fleet.SignOn(1, 400.0));
  EXPECT_TRUE(fleet.SignOn(3, 420.0));
  EXPECT_EQ(fleet.driver(3).region, grid_.RegionOf(dest));
  EXPECT_EQ(fleet.driver(3).available_since, 420.0);
  EXPECT_EQ(fleet.available_count(), 10);
  EXPECT_TRUE(fleet.HasFreshDrivers());
  ExpectCountersMatchRecount(fleet, 420.0, window);

  // Mid-trip reversal: sign-off pending, then sign-on before completion —
  // the driver stays on duty, re-enters the window schedule, and rejoins
  // normally, without double-counting the duplicate heap entry.
  fleet.MarkBusy(6, /*busy_until=*/700.0, dest, grid_.RegionOf(dest));
  EXPECT_TRUE(fleet.SignOff(6));
  EXPECT_TRUE(fleet.SignOn(6, 450.0));
  for (double now = 450.0; now <= 900.0; now += 30.0) {
    fleet.ReleaseFinished(now);
    fleet.AdvanceRejoinWindow(now, window);
    ExpectCountersMatchRecount(fleet, now, window);
  }
  EXPECT_FALSE(fleet.driver(6).busy);
  EXPECT_FALSE(fleet.driver(6).signed_off);
  EXPECT_EQ(fleet.available_count(), 10);
}

TEST_F(FleetStateTest, ReleaseQueuesFreshDriversForEstimateCapture) {
  FleetState fleet(workload_, grid_);
  EXPECT_TRUE(fleet.HasFreshDrivers());  // everyone joins at t = 0
  fleet.CaptureIdleEstimates(nullptr);
  EXPECT_FALSE(fleet.HasFreshDrivers());

  LatLon dest = PointAt(0.2, 0.8);
  fleet.MarkBusy(3, 50.0, dest, grid_.RegionOf(dest));
  fleet.ReleaseFinished(60.0);
  EXPECT_TRUE(fleet.HasFreshDrivers());
  EXPECT_EQ(fleet.driver(3).region, grid_.RegionOf(dest));
  EXPECT_EQ(fleet.driver(3).available_since, 50.0);
}

// ------------------------------------------------------------- OrderBook

class RenegeCounter : public SimObserver {
 public:
  void OnRiderReneged(double /*now*/, const Order& order) override {
    reneged_ids.push_back(order.id);
  }
  std::vector<OrderId> reneged_ids;
};

class OrderBookTest : public ::testing::Test {
 protected:
  OrderBookTest() : grid_(kNycBoundingBox, 4, 4), cost_(10.0, 1.0) {
    LatLon a{40.70, -74.00}, b{40.75, -73.95}, c{40.85, -73.85};
    for (int i = 0; i < 6; ++i) {
      Order o;
      o.id = i;
      o.request_time = 10.0 * i;
      o.pickup = (i % 2 == 0) ? a : c;
      o.dropoff = b;
      o.pickup_deadline = o.request_time + ((i == 1 || i == 4) ? 15.0 : 600.0);
      workload_.orders.push_back(o);
    }
  }

  void ExpectDemandMatchesRecount(const OrderBook& book) {
    std::vector<int64_t> demand(static_cast<size_t>(grid_.num_regions()), 0);
    for (const PendingRider& pr : book.waiting()) {
      if (!pr.served) ++demand[static_cast<size_t>(pr.pickup_region)];
    }
    for (int k = 0; k < grid_.num_regions(); ++k) {
      EXPECT_EQ(book.demand_by_region()[static_cast<size_t>(k)],
                demand[static_cast<size_t>(k)])
          << "region " << k;
    }
  }

  Grid grid_;
  StraightLineCostModel cost_;
  Workload workload_;
};

TEST_F(OrderBookTest, InjectRenegeServeCompactKeepsCountsAndOrder) {
  OrderBook book(workload_, grid_, cost_, /*alpha=*/2.0);
  book.InjectArrivals(25.0);  // orders 0, 1, 2
  ASSERT_EQ(book.waiting().size(), 3u);
  EXPECT_FALSE(book.Exhausted());
  ExpectDemandMatchesRecount(book);
  // Derived quantities are computed once at injection.
  const PendingRider& first = book.waiting().front();
  EXPECT_EQ(first.order.id, 0);
  EXPECT_EQ(first.trip_seconds,
            cost_.TravelSeconds(first.order.pickup, first.order.dropoff));
  EXPECT_EQ(first.revenue, 2.0 * first.trip_seconds);

  // Order 1 (deadline 25) reneges at now = 30; the observer hears it.
  RenegeCounter reneges;
  book.RemoveExpired(30.0, &reneges);
  ASSERT_EQ(reneges.reneged_ids.size(), 1u);
  EXPECT_EQ(reneges.reneged_ids[0], 1);
  ASSERT_EQ(book.waiting().size(), 2u);
  ExpectDemandMatchesRecount(book);

  book.InjectArrivals(60.0);  // orders 3..5 (order 4 not yet expired)
  ASSERT_EQ(book.waiting().size(), 5u);
  ExpectDemandMatchesRecount(book);
  EXPECT_TRUE(book.Exhausted());

  // Serve the first and third waiting riders; the pool keeps arrival order
  // after the single compaction pass.
  book.MarkServed(0);
  book.MarkServed(2);
  ExpectDemandMatchesRecount(book);
  book.CompactServed();
  ASSERT_EQ(book.waiting().size(), 3u);
  std::vector<OrderId> left;
  for (const PendingRider& pr : book.waiting()) left.push_back(pr.order.id);
  EXPECT_EQ(left, (std::vector<OrderId>{2, 4, 5}));
  ExpectDemandMatchesRecount(book);
  EXPECT_EQ(book.UnservedRemainder(), 3);
}

TEST_F(OrderBookTest, CompactionWhenEveryWaitingRiderServedInOneBatch) {
  OrderBook book(workload_, grid_, cost_, /*alpha=*/1.0);
  book.InjectArrivals(52.0);  // all six orders
  ASSERT_EQ(book.waiting().size(), 6u);
  ExpectDemandMatchesRecount(book);

  // A dispatcher clears the whole pool in a single batch.
  for (int i = 0; i < 6; ++i) book.MarkServed(i);
  ExpectDemandMatchesRecount(book);  // demand zeroed before compaction
  for (int k = 0; k < grid_.num_regions(); ++k) {
    EXPECT_EQ(book.demand_by_region()[static_cast<size_t>(k)], 0) << k;
  }
  book.CompactServed();
  EXPECT_TRUE(book.waiting().empty());
  ExpectDemandMatchesRecount(book);
  EXPECT_EQ(book.UnservedRemainder(), 0);
  EXPECT_TRUE(book.Exhausted());
}

TEST_F(OrderBookTest, ServeAndRenegeDistinctRidersInTheSameBatch) {
  OrderBook book(workload_, grid_, cost_, /*alpha=*/1.0);
  book.InjectArrivals(60.0);  // all six orders
  ASSERT_EQ(book.waiting().size(), 6u);

  // One batch at now = 60: orders 1 (deadline 25) and 4 (deadline 55)
  // renege, then distinct riders 0 and 5 are served.
  RenegeCounter reneges;
  book.RemoveExpired(60.0, &reneges);
  EXPECT_EQ(reneges.reneged_ids, (std::vector<OrderId>{1, 4}));
  ASSERT_EQ(book.waiting().size(), 4u);  // orders 0, 2, 3, 5
  ExpectDemandMatchesRecount(book);

  book.MarkServed(0);  // order 0
  book.MarkServed(3);  // order 5
  ExpectDemandMatchesRecount(book);
  book.CompactServed();
  ASSERT_EQ(book.waiting().size(), 2u);
  std::vector<OrderId> left;
  for (const PendingRider& pr : book.waiting()) left.push_back(pr.order.id);
  EXPECT_EQ(left, (std::vector<OrderId>{2, 3}));
  ExpectDemandMatchesRecount(book);
  EXPECT_EQ(book.UnservedRemainder(), 2);
}

TEST_F(OrderBookTest, CancelledRidersLeaveDemandAndSkipServedAndUnknown) {
  OrderBook book(workload_, grid_, cost_, /*alpha=*/1.0);
  book.InjectArrivals(60.0);
  ASSERT_EQ(book.waiting().size(), 6u);

  // Serve order 0, then cancel {0, 2, 5, 99}: the served rider and the
  // unknown id are skipped; 2 and 5 cancel, in pool order.
  book.MarkServed(0);
  class CancelRecorder : public SimObserver {
   public:
    void OnRiderCancelled(double /*now*/, const Order& order) override {
      ids.push_back(order.id);
    }
    std::vector<OrderId> ids;
  } cancels;
  int64_t n = book.CancelRiders({0, 2, 5, 99}, 60.0, &cancels);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(cancels.ids, (std::vector<OrderId>{2, 5}));
  ExpectDemandMatchesRecount(book);
  book.CompactServed();
  ASSERT_EQ(book.waiting().size(), 3u);  // orders 1, 3, 4
  ExpectDemandMatchesRecount(book);
}

// ----------------------------------------------------------- BatchBuilder

TEST(BatchBuilderTest, ShardParallelBuildMatchesSerialBuild) {
  GeneratorConfig gcfg;
  gcfg.orders_per_day = 40000.0;  // enough waiting riders for the
  gcfg.seed = 7;                  // parallel materialisation path
  NycLikeGenerator gen(gcfg);
  Workload workload = gen.GenerateDay(/*day_index=*/2, /*num_drivers=*/600);
  const Grid& grid = gen.grid();
  StraightLineCostModel cost(7.0, 1.3);
  const double now = 7200.0, window = 1200.0;

  FleetState fleet(workload, grid);
  // Send a third of the fleet out on trips with completion times around the
  // window boundary, then slide the window to `now`.
  for (int j = 0; j < fleet.size(); j += 3) {
    const Order& o =
        workload.orders[static_cast<size_t>(j) % workload.orders.size()];
    double busy_until = now - 600.0 + 7.5 * static_cast<double>(j);
    fleet.MarkBusy(j, busy_until, o.dropoff, grid.RegionOf(o.dropoff));
  }
  fleet.ReleaseFinished(now);
  fleet.AdvanceRejoinWindow(now, window);

  OrderBook orders(workload, grid, cost, /*alpha=*/1.0);
  orders.InjectArrivals(now);
  ASSERT_GE(orders.waiting().size(), 512u) << "parallel path not exercised";
  ASSERT_GE(fleet.drivers().size(), 512u);

  BatchBuilder serial_builder(grid, cost, nullptr, window, 0.02,
                              CandidateMode::kRingExpand, nullptr);
  auto serial_ctx = serial_builder.Build(now, orders, fleet);

  ThreadPool pool(4);
  RegionPartitioner parts = RegionPartitioner::RowBands(grid, 8);
  BatchExecution exec{&pool, &parts};
  BatchBuilder sharded_builder(grid, cost, nullptr, window, 0.02,
                               CandidateMode::kRingExpand, &exec);
  auto sharded_ctx = sharded_builder.Build(now, orders, fleet);

  // Riders: identical contents in identical (arrival) order.
  ASSERT_EQ(serial_ctx->riders().size(), sharded_ctx->riders().size());
  for (size_t i = 0; i < serial_ctx->riders().size(); ++i) {
    EXPECT_EQ(serial_ctx->riders()[i].order_id,
              sharded_ctx->riders()[i].order_id);
    EXPECT_EQ(serial_ctx->riders()[i].revenue,
              sharded_ctx->riders()[i].revenue);
    EXPECT_EQ(serial_ctx->riders()[i].pickup_region,
              sharded_ctx->riders()[i].pickup_region);
  }
  // Drivers: ascending fleet index, available only.
  ASSERT_EQ(serial_ctx->drivers().size(), sharded_ctx->drivers().size());
  for (size_t j = 0; j < serial_ctx->drivers().size(); ++j) {
    EXPECT_EQ(serial_ctx->drivers()[j].driver_id,
              sharded_ctx->drivers()[j].driver_id);
    EXPECT_EQ(serial_ctx->drivers()[j].region,
              sharded_ctx->drivers()[j].region);
    EXPECT_EQ(serial_ctx->drivers()[j].available_since,
              sharded_ctx->drivers()[j].available_since);
  }
  EXPECT_EQ(serial_ctx->drivers_by_region(),
            sharded_ctx->drivers_by_region());
  // Snapshots off the incremental counters match in every field.
  for (int k = 0; k < grid.num_regions(); ++k) {
    const RegionSnapshot& a = serial_ctx->snapshots()[static_cast<size_t>(k)];
    const RegionSnapshot& b =
        sharded_ctx->snapshots()[static_cast<size_t>(k)];
    EXPECT_EQ(a.waiting_riders, b.waiting_riders) << k;
    EXPECT_EQ(a.available_drivers, b.available_drivers) << k;
    EXPECT_EQ(a.predicted_riders, b.predicted_riders) << k;
    EXPECT_EQ(a.predicted_drivers, b.predicted_drivers) << k;
  }

  // The prebuilt shard index equals a brute-force membership scan.
  const BatchContext::ShardIndex* index = sharded_ctx->shard_index();
  ASSERT_NE(index, nullptr);
  ASSERT_EQ(index->partitioner, &parts);
  for (int s = 0; s < parts.num_shards(); ++s) {
    std::vector<int> rider_scan, driver_scan;
    for (int i = 0; i < static_cast<int>(sharded_ctx->riders().size()); ++i) {
      if (parts.shard_of(
              sharded_ctx->riders()[static_cast<size_t>(i)].pickup_region) ==
          s) {
        rider_scan.push_back(i);
      }
    }
    for (int j = 0; j < static_cast<int>(sharded_ctx->drivers().size());
         ++j) {
      if (parts.shard_of(
              sharded_ctx->drivers()[static_cast<size_t>(j)].region) == s) {
        driver_scan.push_back(j);
      }
    }
    EXPECT_EQ(index->riders[static_cast<size_t>(s)], rider_scan) << s;
    EXPECT_EQ(index->drivers[static_cast<size_t>(s)], driver_scan) << s;
  }

  // Snapshot counters also equal the monolith's per-batch entity recount.
  std::vector<int64_t> waiting_recount(
      static_cast<size_t>(grid.num_regions()), 0);
  std::vector<int64_t> available_recount(
      static_cast<size_t>(grid.num_regions()), 0);
  for (const auto& r : serial_ctx->riders()) {
    ++waiting_recount[static_cast<size_t>(r.pickup_region)];
  }
  for (const auto& d : serial_ctx->drivers()) {
    ++available_recount[static_cast<size_t>(d.region)];
  }
  for (int k = 0; k < grid.num_regions(); ++k) {
    EXPECT_EQ(serial_ctx->snapshots()[static_cast<size_t>(k)].waiting_riders,
              waiting_recount[static_cast<size_t>(k)])
        << k;
    EXPECT_EQ(
        serial_ctx->snapshots()[static_cast<size_t>(k)].available_drivers,
        available_recount[static_cast<size_t>(k)])
        << k;
  }
}

// ------------------------------------------------------- observer hooks

class RecordingObserver : public SimObserver {
 public:
  void OnBatchBuilt(double /*now*/, double build_seconds,
                    const BatchContext& ctx) override {
    ++batches_built;
    build_seconds_nonnegative &= build_seconds >= 0.0;
    // The incremental snapshots must equal an entity recount every batch.
    std::vector<int64_t> waiting(ctx.snapshots().size(), 0);
    std::vector<int64_t> available(ctx.snapshots().size(), 0);
    for (const auto& r : ctx.riders()) {
      ++waiting[static_cast<size_t>(r.pickup_region)];
    }
    for (const auto& d : ctx.drivers()) {
      ++available[static_cast<size_t>(d.region)];
    }
    for (size_t k = 0; k < ctx.snapshots().size(); ++k) {
      snapshots_match &= ctx.snapshots()[k].waiting_riders == waiting[k];
      snapshots_match &= ctx.snapshots()[k].available_drivers == available[k];
    }
  }
  void OnDispatchDone(double /*now*/, double /*dispatch_seconds*/,
                      const std::vector<Assignment>& a) override {
    ++dispatches;
    assignments_emitted += static_cast<int64_t>(a.size());
  }
  void OnAssignmentApplied(double now, const AssignmentEvent& e) override {
    ++assignments_applied;
    events_consistent &= e.busy_until >= now;
    events_consistent &= e.revenue > 0.0;
    events_consistent &= e.wait_seconds >= 0.0;
    events_consistent &= e.order_id >= 0 && e.driver_id >= 0;
  }
  void OnRiderReneged(double /*now*/, const Order& /*order*/) override {
    ++reneges;
  }
  void OnBatchEnd(double /*now*/) override { ++batch_ends; }
  void OnRunEnd(double /*end_time*/, int64_t never_dispatched) override {
    ++run_ends;
    leftover = never_dispatched;
  }

  int batches_built = 0, dispatches = 0, batch_ends = 0, run_ends = 0;
  int64_t assignments_emitted = 0, assignments_applied = 0, reneges = 0;
  int64_t leftover = 0;
  bool snapshots_match = true, events_consistent = true;
  bool build_seconds_nonnegative = true;
};

TEST(SimObserverTest, HooksAgreeWithCollectedMetrics) {
  GeneratorConfig gcfg;
  gcfg.orders_per_day = 800.0;
  gcfg.seed = 11;
  NycLikeGenerator gen(gcfg);
  Workload workload = gen.GenerateDay(/*day_index=*/1, /*num_drivers=*/30);
  StraightLineCostModel cost(7.0, 1.3);

  SimConfig cfg;
  cfg.horizon_seconds = 3 * 3600.0;
  cfg.batch_interval = 30.0;

  Simulator sim(cfg, workload, gen.grid(), cost, nullptr);
  auto dispatcher = MakeNearestDispatcher();
  RecordingObserver obs;
  SimResult r = sim.Run(*dispatcher, &obs);

  ASSERT_GT(r.served_orders, 0);
  EXPECT_EQ(obs.batches_built, r.num_batches);
  EXPECT_EQ(obs.dispatches, r.num_batches);
  EXPECT_EQ(obs.batch_ends, r.num_batches);
  EXPECT_EQ(obs.run_ends, 1);
  EXPECT_EQ(obs.assignments_applied, r.served_orders);
  EXPECT_EQ(obs.reneges + obs.leftover, r.reneged_orders);
  EXPECT_TRUE(obs.snapshots_match);
  EXPECT_TRUE(obs.events_consistent);
  EXPECT_TRUE(obs.build_seconds_nonnegative);
  EXPECT_EQ(r.batch_build_seconds.count(), r.num_batches);
}

}  // namespace
}  // namespace mrvd
