// Direct unit tests for LS swap semantics (Algorithm 3) and the
// conflict-decomposed parallel sweep:
//   * the same-dropoff-region `extra` adjustment (scoring a candidate as if
//     the current rider were released) actually flips swap decisions,
//   * the max_sweeps bound and the no-swap convergence exit,
//   * conflict-partition correctness: conflicting slots never share an
//     independence level,
//   * parallel=1 reproduces parallel=0 bit-identically at several thread
//     counts, with sane work counters.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/dispatcher_registry.h"
#include "dispatch/candidates.h"
#include "dispatch/conflict_partition.h"
#include "dispatch/dispatchers.h"
#include "dispatch/irg_core.h"
#include "geo/region_partitioner.h"
#include "geo/travel.h"
#include "sim/batch.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace mrvd {
namespace {

// ------------------------------------------------- hand-built swap cases

// A congested destination region makes ET strictly increasing in the
// tentative extra-driver count, which is what the same-region adjustment
// trades on.
class LocalSearchSwapTest : public ::testing::Test {
 protected:
  LocalSearchSwapTest()
      : grid_(kNycBoundingBox, 4, 4),
        cost_(10.0, 1.0),
        ctx_(/*now=*/1000.0, /*window=*/1200.0, /*beta=*/0.02, grid_, cost_) {}

  WaitingRider MakeRider(OrderId id, LatLon pickup, LatLon dropoff,
                         double trip_seconds) {
    WaitingRider r;
    r.order_id = id;
    r.pickup = pickup;
    r.dropoff = dropoff;
    r.request_time = 990.0;
    r.pickup_deadline = 1400.0;
    r.trip_seconds = trip_seconds;
    r.revenue = trip_seconds;
    r.pickup_region = grid_.RegionOf(pickup);
    r.dropoff_region = grid_.RegionOf(dropoff);
    return r;
  }

  AvailableDriver MakeDriver(DriverId id, LatLon loc) {
    AvailableDriver d;
    d.driver_id = id;
    d.location = loc;
    d.region = grid_.RegionOf(loc);
    d.available_since = 900.0;
    return d;
  }

  void FinalizeSnapshots(
      const std::vector<std::pair<RegionId, double>>& predicted_riders = {}) {
    std::vector<RegionSnapshot> snaps(
        static_cast<size_t>(grid_.num_regions()));
    for (const auto& r : ctx_.riders()) {
      ++snaps[static_cast<size_t>(r.pickup_region)].waiting_riders;
    }
    for (const auto& d : ctx_.drivers()) {
      ++snaps[static_cast<size_t>(d.region)].available_drivers;
    }
    for (auto [region, count] : predicted_riders) {
      snaps[static_cast<size_t>(region)].predicted_riders = count;
    }
    ctx_.SetSnapshots(std::move(snaps));
  }

  /// One driver, two riders with near-equal trips into the same congested
  /// region: the swap only improves because the candidate is scored at
  /// extra-1 (the current rider released), and after swapping the released
  /// rider becomes the better candidate again — a deliberate 2-cycle that
  /// never converges, so it exercises both the adjustment and the
  /// max_sweeps bound. Returns the hot region.
  RegionId BuildSameRegionOscillator() {
    LatLon origin{40.70, -74.00};
    LatLon hot_dest{40.88, -73.80};
    EXPECT_NE(grid_.RegionOf(origin), grid_.RegionOf(hot_dest));
    ctx_.AddRider(MakeRider(0, origin, hot_dest, /*trip_seconds=*/4000.0));
    ctx_.AddRider(MakeRider(1, origin, hot_dest, /*trip_seconds=*/3999.0));
    ctx_.AddDriver(MakeDriver(0, origin));
    RegionId hot = grid_.RegionOf(hot_dest);
    // Low predicted demand puts the destination in the congested-driver
    // regime, where each extra rejoining driver lengthens the queue and ET
    // strictly rises with `extra` (see dispatch_test's monotonicity case —
    // heavy rider surplus can invert this).
    FinalizeSnapshots({{hot, 2.0}});
    return hot;
  }

  Grid grid_;
  StraightLineCostModel cost_;
  BatchContext ctx_;
};

TEST_F(LocalSearchSwapTest, SameRegionCandidateScoredWithCurrentReleased) {
  RegionId hot = BuildSameRegionOscillator();

  // Congestion makes ET strictly increasing in extra, so the adjustment
  // matters: at the *same* supply the shorter-trip candidate scores worse
  // than the current rider, at extra-1 it scores better.
  double et0 = ctx_.ExpectedIdleSeconds(hot, 0);
  double et1 = ctx_.ExpectedIdleSeconds(hot, 1);
  ASSERT_LT(et0, et1);
  double cur_ir = ScorePair(ctx_, ctx_.riders()[0],
                            GreedyObjective::kIdleRatio, 1);
  ASSERT_GT(ScorePair(ctx_, ctx_.riders()[1], GreedyObjective::kIdleRatio, 1),
            cur_ir);
  ASSERT_LT(ScorePair(ctx_, ctx_.riders()[1], GreedyObjective::kIdleRatio, 0),
            cur_ir);

  // Greedy assigns rider 0 (longer trip -> lower IR); one sweep must then
  // swap to rider 1, which only improves under the extra-1 scoring.
  for (bool parallel : {false, true}) {
    auto ls = MakeLocalSearchDispatcher(/*max_sweeps=*/1, parallel);
    std::vector<Assignment> out;
    ls->Dispatch(ctx_, &out);
    ASSERT_EQ(out.size(), 1u) << "parallel=" << parallel;
    EXPECT_EQ(out[0].rider_index, 1) << "parallel=" << parallel;
    const DispatchCounters* c = ls->counters();
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->sweeps, 1);
    EXPECT_EQ(c->swaps_applied, 1);
  }
}

TEST_F(LocalSearchSwapTest, MaxSweepsBoundsTheOscillation) {
  BuildSameRegionOscillator();
  // The 2-cycle swaps every sweep, so the dispatcher must run exactly
  // max_sweeps sweeps and the final rider is determined by sweep parity.
  for (int max_sweeps : {1, 2, 3, 6}) {
    for (bool parallel : {false, true}) {
      auto ls = MakeLocalSearchDispatcher(max_sweeps, parallel);
      std::vector<Assignment> out;
      ls->Dispatch(ctx_, &out);
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0].rider_index, max_sweeps % 2 == 1 ? 1 : 0)
          << "max_sweeps=" << max_sweeps << " parallel=" << parallel;
      const DispatchCounters* c = ls->counters();
      ASSERT_NE(c, nullptr);
      EXPECT_EQ(c->sweeps, max_sweeps);
      EXPECT_EQ(c->swaps_applied, max_sweeps);
    }
  }
}

TEST_F(LocalSearchSwapTest, ConvergedAssignmentExitsAfterOneSweep) {
  // Distinct cold destination regions: greedy already picks the argmin, the
  // first sweep finds no improving swap and the loop exits well under the
  // max_sweeps budget.
  LatLon origin{40.70, -74.00};
  ctx_.AddRider(MakeRider(0, origin, LatLon{40.62, -74.01}, 400.0));
  ctx_.AddRider(MakeRider(1, origin, LatLon{40.75, -73.92}, 4000.0));
  ctx_.AddDriver(MakeDriver(0, origin));
  ASSERT_NE(ctx_.riders()[0].dropoff_region, ctx_.riders()[1].dropoff_region);
  FinalizeSnapshots();

  for (bool parallel : {false, true}) {
    auto ls = MakeLocalSearchDispatcher(/*max_sweeps=*/16, parallel);
    std::vector<Assignment> out;
    ls->Dispatch(ctx_, &out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].rider_index, 1);  // long trip -> lower idle ratio
    const DispatchCounters* c = ls->counters();
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->sweeps, 1) << "parallel=" << parallel;
    EXPECT_EQ(c->swaps_applied, 0);
    EXPECT_EQ(c->proposals_recomputed, 0);
  }
}

// -------------------------------------------------- randomized batches

std::unique_ptr<BatchContext> MakeRandomBatch(const Grid& grid,
                                              const TravelCostModel& cost,
                                              uint64_t seed, int num_riders,
                                              int num_drivers) {
  auto ctx = std::make_unique<BatchContext>(
      /*now=*/3600.0, /*window=*/1200.0, /*beta=*/0.02, grid, cost);
  Rng rng(seed);
  auto random_point = [&] {
    return LatLon{rng.Uniform(kNycBoundingBox.lat_min, kNycBoundingBox.lat_max),
                  rng.Uniform(kNycBoundingBox.lon_min,
                              kNycBoundingBox.lon_max)};
  };
  for (int i = 0; i < num_riders; ++i) {
    WaitingRider r;
    r.order_id = i;
    r.pickup = random_point();
    r.dropoff = random_point();
    r.request_time = 3600.0 - rng.Uniform(0.0, 120.0);
    r.pickup_deadline = 3600.0 + rng.Uniform(60.0, 600.0);
    r.trip_seconds = cost.TravelSeconds(r.pickup, r.dropoff);
    r.revenue = r.trip_seconds;
    r.pickup_region = grid.RegionOf(r.pickup);
    r.dropoff_region = grid.RegionOf(r.dropoff);
    ctx->AddRider(r);
  }
  for (int j = 0; j < num_drivers; ++j) {
    AvailableDriver d;
    d.driver_id = j;
    d.location = random_point();
    d.region = grid.RegionOf(d.location);
    d.available_since = 3600.0 - rng.Uniform(0.0, 300.0);
    ctx->AddDriver(d);
  }
  std::vector<RegionSnapshot> snaps(static_cast<size_t>(grid.num_regions()));
  for (const auto& r : ctx->riders()) {
    ++snaps[static_cast<size_t>(r.pickup_region)].waiting_riders;
  }
  for (const auto& d : ctx->drivers()) {
    ++snaps[static_cast<size_t>(d.region)].available_drivers;
  }
  for (auto& s : snaps) {
    s.predicted_riders = rng.Uniform(0.0, 30.0);
    s.predicted_drivers = rng.Uniform(0.0, 10.0);
  }
  ctx->SetSnapshots(std::move(snaps));
  return ctx;
}

TEST(ConflictPartitionTest, ConflictingSlotsNeverShareALevel) {
  Grid grid = MakeNycGrid16x16();
  StraightLineCostModel cost(7.0, 1.3);
  for (uint64_t seed : {5u, 42u}) {
    auto ctx = MakeRandomBatch(grid, cost, seed, 150, 100);
    std::vector<CandidatePair> pairs = GenerateValidPairs(*ctx);
    IrgState state =
        RunGreedySelection(*ctx, pairs, GreedyObjective::kIdleRatio);
    LsSwapPlan plan = BuildLsSwapPlan(*ctx, pairs, state.assignments);

    ASSERT_EQ(plan.num_slots, static_cast<int>(state.assignments.size()));
    ASSERT_GT(plan.num_slots, 10);
    ASSERT_GE(plan.num_levels, 1);

    int conflicts = 0;
    for (int i = 0; i < plan.num_slots; ++i) {
      EXPECT_GE(plan.level[static_cast<size_t>(i)], 0);
      EXPECT_LT(plan.level[static_cast<size_t>(i)], plan.num_levels);
      for (int j = i + 1; j < plan.num_slots; ++j) {
        if (!SlotsConflict(plan, i, j)) continue;
        ++conflicts;
        // An ordered independence level: every later conflicting slot sits
        // strictly above — in particular the two never share a level, and
        // level-0 slots have no earlier conflict at all.
        EXPECT_GT(plan.level[static_cast<size_t>(j)],
                  plan.level[static_cast<size_t>(i)])
            << "slots " << i << " and " << j << " conflict, seed " << seed;
      }
    }
    // Contended NYC batches must actually exercise the partition.
    EXPECT_GT(conflicts, 0) << "seed " << seed;
    EXPECT_GT(plan.num_levels, 1) << "seed " << seed;
  }
}

TEST(ConflictPartitionTest, CandidateListsMatchTheMatchedPairs) {
  Grid grid = MakeNycGrid16x16();
  StraightLineCostModel cost(7.0, 1.3);
  auto ctx = MakeRandomBatch(grid, cost, 7, 120, 80);
  std::vector<CandidatePair> pairs = GenerateValidPairs(*ctx);
  IrgState state =
      RunGreedySelection(*ctx, pairs, GreedyObjective::kIdleRatio);
  LsSwapPlan plan = BuildLsSwapPlan(*ctx, pairs, state.assignments);

  // CSR candidate totals == pairs owned by matched drivers, in pair order.
  std::vector<int> slot_of_driver(ctx->drivers().size(), -1);
  for (int i = 0; i < plan.num_slots; ++i) {
    slot_of_driver[static_cast<size_t>(
        state.assignments[static_cast<size_t>(i)].driver_index)] = i;
  }
  std::vector<std::vector<const CandidatePair*>> expected(
      static_cast<size_t>(plan.num_slots));
  for (const CandidatePair& cp : pairs) {
    int slot = slot_of_driver[static_cast<size_t>(cp.driver_index)];
    if (slot >= 0) expected[static_cast<size_t>(slot)].push_back(&cp);
  }
  for (int i = 0; i < plan.num_slots; ++i) {
    const auto& exp = expected[static_cast<size_t>(i)];
    ASSERT_EQ(plan.cand_offsets[static_cast<size_t>(i) + 1] -
                  plan.cand_offsets[static_cast<size_t>(i)],
              static_cast<int>(exp.size()));
    bool slot_has_dup_region = false;
    std::vector<RegionId> seen;
    for (size_t c = 0; c < exp.size(); ++c) {
      const auto at =
          static_cast<size_t>(plan.cand_offsets[static_cast<size_t>(i)]) + c;
      const WaitingRider& r =
          ctx->riders()[static_cast<size_t>(exp[c]->rider_index)];
      EXPECT_EQ(plan.cand_rider[at], exp[c]->rider_index);
      EXPECT_EQ(plan.cand_dropoff[at], r.dropoff_region);
      EXPECT_EQ(plan.cand_trip[at], r.trip_seconds);
      for (RegionId s : seen) slot_has_dup_region |= s == r.dropoff_region;
      seen.push_back(r.dropoff_region);
    }
    // A repeated dropoff region within the slot must be flagged for the
    // extra-1 ET table.
    if (slot_has_dup_region) {
      bool flagged = false;
      for (RegionId s : seen) {
        flagged |= plan.needs_minus1[static_cast<size_t>(s)] != 0;
      }
      EXPECT_TRUE(flagged) << "slot " << i;
    }
  }
}

TEST(ParallelLocalSearchTest, BitIdenticalToSerialAcrossThreadCounts) {
  Grid grid = MakeNycGrid16x16();
  StraightLineCostModel cost(7.0, 1.3);
  for (uint64_t seed : {3u, 20190417u}) {
    auto serial_ctx = MakeRandomBatch(grid, cost, seed, 220, 160);
    auto serial = MakeLocalSearchDispatcher(/*max_sweeps=*/16,
                                            /*parallel=*/false);
    std::vector<Assignment> want;
    serial->Dispatch(*serial_ctx, &want);
    ASSERT_GE(want.size(), 64u) << "batch too small to exercise the pool";
    const DispatchCounters* sc = serial->counters();
    ASSERT_NE(sc, nullptr);
    EXPECT_EQ(sc->proposals_recomputed, 0);

    for (int threads : {1, 2, 4}) {
      ThreadPool pool(threads);
      RegionPartitioner parts = RegionPartitioner::RowBands(grid, 8);
      BatchExecution exec{&pool, &parts};
      auto ctx = MakeRandomBatch(grid, cost, seed, 220, 160);
      ctx->SetExecution(&exec);
      auto ls = MakeLocalSearchDispatcher(/*max_sweeps=*/16,
                                          /*parallel=*/true);
      std::vector<Assignment> got;
      ls->Dispatch(*ctx, &got);
      ASSERT_EQ(got.size(), want.size()) << threads << " threads";
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i].rider_index, want[i].rider_index)
            << "slot " << i << " at " << threads << " threads, seed " << seed;
        ASSERT_EQ(got[i].driver_index, want[i].driver_index)
            << "slot " << i << " at " << threads << " threads, seed " << seed;
      }
      const DispatchCounters* pc = ls->counters();
      ASSERT_NE(pc, nullptr);
      // Identical refinement trajectory -> identical work counters; only
      // the speculation-miss count is a parallel-path concept.
      EXPECT_EQ(pc->sweeps, sc->sweeps);
      EXPECT_EQ(pc->swaps_applied, sc->swaps_applied);
      EXPECT_EQ(pc->proposals, sc->proposals);
      EXPECT_GE(pc->proposals_recomputed, 0);
      EXPECT_LE(pc->proposals_recomputed, pc->proposals);
    }
  }
}

TEST(ParallelLocalSearchTest, RegistrySpecSelectsThePath) {
  const DispatcherRegistry& registry = DispatcherRegistry::Global();
  StatusOr<std::string> canonical = registry.CanonicalizeSpec("LS");
  ASSERT_TRUE(canonical.ok()) << canonical.status();
  EXPECT_EQ(*canonical, "LS:max_sweeps=16,parallel=1");

  for (const char* spec : {"LS:parallel=0", "LS:max_sweeps=8,parallel=1"}) {
    StatusOr<std::unique_ptr<Dispatcher>> d = registry.Create(spec);
    ASSERT_TRUE(d.ok()) << spec << ": " << d.status();
    EXPECT_EQ((*d)->name(), "LS");
  }
}

}  // namespace
}  // namespace mrvd
