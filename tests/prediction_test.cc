#include <gtest/gtest.h>

#include <cmath>

#include "prediction/forecast.h"
#include "prediction/gbrt.h"
#include "prediction/linalg.h"
#include "prediction/predictor.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace mrvd {
namespace {

// ----------------------------------------------------------------- linalg

TEST(LinalgTest, CholeskySolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5].
  auto x = CholeskySolve({4, 2, 2, 3}, 2, {10, 8});
  ASSERT_TRUE(x.ok()) << x.status();
  EXPECT_NEAR((*x)[0], 1.75, 1e-12);
  EXPECT_NEAR((*x)[1], 1.5, 1e-12);
}

TEST(LinalgTest, CholeskyRejectsIndefinite) {
  auto x = CholeskySolve({1, 2, 2, 1}, 2, {1, 1});
  EXPECT_FALSE(x.ok());
}

TEST(LinalgTest, RidgeFitRecoversLinearModel) {
  // y = 3 x0 - 2 x1 + 1 with tiny noise.
  Rng rng(3);
  const int rows = 400, cols = 3;
  std::vector<double> x, y;
  for (int i = 0; i < rows; ++i) {
    double a = rng.Uniform(-1, 1), b = rng.Uniform(-1, 1);
    x.insert(x.end(), {a, b, 1.0});
    y.push_back(3 * a - 2 * b + 1 + rng.Normal(0, 0.001));
  }
  auto w = RidgeFit(x, rows, cols, y, 1e-8);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR((*w)[0], 3.0, 0.01);
  EXPECT_NEAR((*w)[1], -2.0, 0.01);
  EXPECT_NEAR((*w)[2], 1.0, 0.01);
}

// ------------------------------------------------------------------- GBRT

TEST(GbrtTest, FitsStepFunction) {
  Rng rng(5);
  const int rows = 2000;
  std::vector<double> x, y;
  for (int i = 0; i < rows; ++i) {
    double v = rng.Uniform(0, 1);
    x.push_back(v);
    y.push_back(v < 0.5 ? 1.0 : 5.0);
  }
  GbrtRegressorOptions opt;
  opt.num_trees = 30;
  auto model = GbrtRegressor::Fit(x, rows, 1, y, opt);
  ASSERT_TRUE(model.ok()) << model.status();
  double lo = model->Predict(std::vector<double>{0.2});
  double hi = model->Predict(std::vector<double>{0.8});
  EXPECT_NEAR(lo, 1.0, 0.3);
  EXPECT_NEAR(hi, 5.0, 0.3);
}

TEST(GbrtTest, FitsAdditiveFunction) {
  Rng rng(6);
  const int rows = 4000;
  std::vector<double> x, y;
  for (int i = 0; i < rows; ++i) {
    double a = rng.Uniform(0, 1), b = rng.Uniform(0, 1);
    x.insert(x.end(), {a, b});
    y.push_back(2 * a + std::sin(6 * b));
  }
  GbrtRegressorOptions opt;
  opt.num_trees = 120;
  opt.max_depth = 4;
  auto model = GbrtRegressor::Fit(x, rows, 2, y, opt);
  ASSERT_TRUE(model.ok());
  double se = 0;
  int n_test = 200;
  Rng trng(7);
  for (int i = 0; i < n_test; ++i) {
    double a = trng.Uniform(0.05, 0.95), b = trng.Uniform(0.05, 0.95);
    double pred = model->Predict(std::vector<double>{a, b});
    double truth = 2 * a + std::sin(6 * b);
    se += (pred - truth) * (pred - truth);
  }
  EXPECT_LT(std::sqrt(se / n_test), 0.25);
}

TEST(GbrtTest, RejectsBadDimensions) {
  EXPECT_FALSE(GbrtRegressor::Fit({1, 2}, 3, 1, {1, 2, 3}).ok());
}

// -------------------------------------------------------------- predictors

class PredictorOrderingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig cfg;
    cfg.grid_rows = 8;
    cfg.grid_cols = 8;
    cfg.orders_per_day = 20000.0;
    generator_ = new NycLikeGenerator(cfg);
    // 28 days of history; the final 2 days are the evaluation window.
    history_ = new DemandHistory(generator_->GenerateHistory(28, 48));
  }
  static void TearDownTestSuite() {
    delete generator_;
    delete history_;
    generator_ = nullptr;
    history_ = nullptr;
  }

  static NycLikeGenerator* generator_;
  static DemandHistory* history_;
  static constexpr int kEvalStart = 26 * 48;
};

NycLikeGenerator* PredictorOrderingTest::generator_ = nullptr;
DemandHistory* PredictorOrderingTest::history_ = nullptr;

TEST_F(PredictorOrderingTest, AllPredictorsTrainAndPredictNonNegative) {
  auto preds = {MakeHistoricalAveragePredictor(), MakeLinearRegressionPredictor(),
                MakeDeepStSurrogatePredictor(), MakeOraclePredictor()};
  for (const auto& p : preds) {
    ASSERT_TRUE(p->Train(*history_, generator_->grid()).ok()) << p->name();
    for (int r : {0, 13, 63}) {
      EXPECT_GE(p->PredictStep(*history_, kEvalStart + 5, r), 0.0)
          << p->name();
    }
  }
}

TEST_F(PredictorOrderingTest, OracleIsExact) {
  auto oracle = MakeOraclePredictor();
  ASSERT_TRUE(oracle->Train(*history_, generator_->grid()).ok());
  auto eval = EvaluatePredictor(*oracle, *history_, kEvalStart);
  EXPECT_DOUBLE_EQ(eval.real_rmse, 0.0);
  EXPECT_DOUBLE_EQ(eval.rel_rmse_pct, 0.0);
}

TEST_F(PredictorOrderingTest, AccuracyOrderingMatchesTable6) {
  // Table 6: DeepST < GBRT < LR < HA in RMSE. We require the surrogate to
  // beat LR, LR (ridge over the same lags) to beat plain HA, and GBRT to
  // beat HA. (GBRT vs LR can be close on a linear-ish synthetic workload.)
  auto ha = MakeHistoricalAveragePredictor();
  auto lr = MakeLinearRegressionPredictor();
  auto gbrt = MakeGbrtPredictor();
  auto deepst = MakeDeepStSurrogatePredictor();
  for (DemandPredictor* p :
       {ha.get(), lr.get(), gbrt.get(), deepst.get()}) {
    ASSERT_TRUE(p->Train(*history_, generator_->grid()).ok()) << p->name();
  }
  auto e_ha = EvaluatePredictor(*ha, *history_, kEvalStart);
  auto e_lr = EvaluatePredictor(*lr, *history_, kEvalStart);
  auto e_gbrt = EvaluatePredictor(*gbrt, *history_, kEvalStart);
  auto e_deepst = EvaluatePredictor(*deepst, *history_, kEvalStart);

  EXPECT_LT(e_lr.real_rmse, e_ha.real_rmse);
  EXPECT_LT(e_gbrt.real_rmse, e_ha.real_rmse);
  EXPECT_LT(e_deepst.real_rmse, e_lr.real_rmse);
  EXPECT_GT(e_ha.num_predictions, 0);
}

TEST_F(PredictorOrderingTest, HaIsMeanOfLags) {
  auto ha = MakeHistoricalAveragePredictor(15);
  ASSERT_TRUE(ha->Train(*history_, generator_->grid()).ok());
  int step = kEvalStart + 20, region = 9;
  double expected = 0;
  for (int k = 1; k <= 15; ++k) {
    expected += history_->at_step(step - k, region);
  }
  expected /= 15;
  EXPECT_NEAR(ha->PredictStep(*history_, step, region), expected, 1e-9);
}

// --------------------------------------------------------------- forecast

TEST_F(PredictorOrderingTest, ForecastWindowSumsSlots) {
  auto oracle = MakeOraclePredictor();
  auto fc = DemandForecast::Build(*oracle, *history_, /*eval_day=*/27);
  ASSERT_TRUE(fc.ok()) << fc.status();
  int region = 20;
  // A full-slot window equals the slot count.
  double slot_secs = kSecondsPerDay / 48;
  EXPECT_NEAR(fc->WindowCount(slot_secs * 10, slot_secs, region),
              fc->SlotCount(10, region), 1e-9);
  // A half-slot window is half the count.
  EXPECT_NEAR(fc->WindowCount(slot_secs * 10, slot_secs / 2, region),
              fc->SlotCount(10, region) / 2, 1e-9);
  // Window spanning two slots = sum of halves.
  EXPECT_NEAR(
      fc->WindowCount(slot_secs * 10.5, slot_secs, region),
      fc->SlotCount(10, region) / 2 + fc->SlotCount(11, region) / 2, 1e-9);
}

TEST_F(PredictorOrderingTest, ForecastTruncatesAtMidnight) {
  auto oracle = MakeOraclePredictor();
  auto fc = DemandForecast::Build(*oracle, *history_, 27);
  ASSERT_TRUE(fc.ok());
  double near_midnight = kSecondsPerDay - 100.0;
  double count = fc->WindowCount(near_midnight, 3600.0, 5);
  double slot_secs = kSecondsPerDay / 48;
  EXPECT_LE(count, fc->SlotCount(47, 5) * (100.0 / slot_secs) + 1e-9);
}

TEST_F(PredictorOrderingTest, ForecastRejectsBadDay) {
  auto oracle = MakeOraclePredictor();
  EXPECT_FALSE(DemandForecast::Build(*oracle, *history_, 99).ok());
}

}  // namespace
}  // namespace mrvd
