#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mrvd {
namespace {

TEST(ThreadPoolTest, InlinePoolRunsOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&] { ran_on = std::this_thread::get_id(); }).get();
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, InlineSubmitRunsTasksInSubmissionOrder) {
  // The queue is FIFO. Strict start order is only observable without worker
  // races, i.e. on the inline path — which shares the same queue contract.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(64);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ContendedSubmitRunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<int> ran;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 128; ++i) {
    futures.push_back(pool.Submit([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      ran.push_back(i);
    }));
  }
  for (auto& f : futures) f.get();
  std::sort(ran.begin(), ran.end());
  std::vector<int> expected(128);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(ran, expected);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int i) { hits[static_cast<size_t>(i)]++; });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(100, [&](int i) {
      if (i == 7 || i == 42) throw std::invalid_argument(std::to_string(i));
      completed++;
    });
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "7");
  }
  // All non-throwing iterations still ran (no early abort mid-batch).
  EXPECT_EQ(completed.load(), 98);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  // The simulator submits one wave of work per batch; the pool must survive
  // many waves without leaking or deadlocking.
  ThreadPool pool(3);
  long total = 0;
  for (int batch = 0; batch < 50; ++batch) {
    std::atomic<long> sum{0};
    pool.ParallelFor(64, [&](int i) { sum += i; });
    total += sum.load();
  }
  EXPECT_EQ(total, 50L * (64 * 63 / 2));
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerDoesNotDeadlock) {
  // A task running on a worker may itself call ParallelFor (the sharded
  // pipeline's speculative pass sorts with the pool it runs on); the nested
  // call must run inline rather than wait on queue slots behind it.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&](int) {
    // Outer iterations run on workers and on the caller; either way the
    // nested call must complete.
    pool.ParallelFor(8, [&](int i) { inner_total += i; });
  });
  EXPECT_EQ(inner_total.load(), 4 * (8 * 7 / 2));
}

TEST(ThreadPoolTest, ZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](int) { FAIL(); });
}

}  // namespace
}  // namespace mrvd
