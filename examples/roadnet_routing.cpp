// Road-network substrate walkthrough: build a Manhattan-style grid network
// over the NYC box, route with Dijkstra and A*, and plug the network-based
// travel-cost model into the simulation via SimulationBuilder's
// WithTravelModel instead of the default straight-line model.
// (New here? Read examples/quickstart.cpp first — it introduces the
// SimulationBuilder surface this example builds on.)
#include <cstdio>
#include <memory>

#include "api/api.h"
#include "roadnet/graph.h"
#include "roadnet/shortest_path.h"

using namespace mrvd;

int main() {
  // 48x48 street grid (~2300 intersections).
  auto net = std::make_shared<RoadNetwork>(
      MakeGridNetwork(kNycBoundingBox, 48, 48, /*speed_mps=*/8.0,
                      /*jitter=*/0.25, /*seed=*/7));
  std::printf("network: %d nodes, %lld directed edges\n", net->num_nodes(),
              (long long)net->num_edges());

  ShortestPathEngine engine(*net);
  NodeId s = 0;                      // SW corner
  NodeId t = net->num_nodes() - 1;   // NE corner
  PathResult dj = engine.PointToPoint(s, t, /*want_path=*/true);
  int64_t dj_settled = engine.last_settled_count();
  PathResult as = engine.AStar(s, t, /*want_path=*/true);
  int64_t as_settled = engine.last_settled_count();
  std::printf("corner-to-corner: %.0f s over %zu nodes\n", dj.cost_seconds,
              dj.path.size());
  std::printf("Dijkstra settled %lld nodes, A* settled %lld (%.1fx fewer)\n",
              (long long)dj_settled, (long long)as_settled,
              static_cast<double>(dj_settled) /
                  static_cast<double>(as_settled));

  // Simulate a morning (6:00-12:00) with network-based travel costs.
  GeneratorConfig cfg;
  cfg.orders_per_day = 12000;
  NycLikeGenerator generator(cfg);
  Workload day = generator.GenerateDay(1, 200);

  RoadNetworkCostModel road_cost(net, kNycBoundingBox, 8.0);
  StatusOr<Simulation> sim = SimulationBuilder()
                                 .WithWorkload(std::move(day), generator.grid())
                                 .WithTravelModel(road_cost)
                                 .BatchInterval(10.0)
                                 .HorizonSeconds(12 * 3600.0)
                                 .Build();
  if (!sim.ok()) {
    std::fprintf(stderr, "build failed: %s\n", sim.status().ToString().c_str());
    return 1;
  }
  StatusOr<SimResult> run = sim->Run("NEAR");
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nhalf-day sim on the road network: served %lld orders, revenue "
      "%.3e, mean batch %.2f ms\n",
      (long long)run->served_orders, run->total_revenue,
      run->batch_seconds.mean() * 1e3);
  return 0;
}
