// Campaign CLI — run, resume and summarize multi-workload experiment grids
// from the command line (read examples/quickstart.cpp first for the
// experiment API underneath; the campaign layer is the grid above it).
//
// A campaign is a declarative cross-product of {workloads x scenarios x
// dispatchers x seeds x config deltas}; every cell's RunResult lands in the
// campaign directory as a content-addressed JSON artifact, so a killed
// campaign resumes exactly where it stopped:
//
//   ./campaign run     out/demo --dispatchers "NEAR;RAND" --reps 3
//   ./campaign resume  out/demo          # re-executes only missing cells
//   ./campaign summarize out/demo        # read-only aggregation
//
// `convert` turns a TLC trip CSV into the binary order-trace format the
// `trace` catalog workload streams with O(batch) memory:
//
//   ./campaign convert trips.csv day.trace --drivers 3000 --day 27
//   ./campaign run out/day --workloads "trace:path=day.trace"
//
// `resume` and `summarize` re-read the grid from <dir>/campaign.json — no
// flags needed. Axis flags take ';'-separated catalog/registry specs
// (specs contain commas): see WorkloadCatalog / ScenarioCatalog /
// DispatcherRegistry for the rosters.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/campaign run /tmp/demo
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/dispatcher_registry.h"
#include "campaign/campaign.h"
#include "util/strings.h"
#include "workload/order_stream.h"

using namespace mrvd;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <run|resume|summarize> <campaign-dir> [options]\n"
      "       %s convert <trips.csv> <out.trace> [--drivers N] [--day D]\n"
      "                  [--max-orders N] [--seed S]\n"
      "\n"
      "options (run only; resume/summarize read <dir>/campaign.json):\n"
      "  --name NAME           campaign name (default: demo)\n"
      "  --workloads SPECS     ';'-separated WorkloadCatalog specs\n"
      "                        (default: nyc:orders=4000,drivers=60)\n"
      "  --scenarios SPECS     ';'-separated ScenarioCatalog specs\n"
      "                        (default: none)\n"
      "  --dispatchers SPECS   ';'-separated dispatcher specs\n"
      "                        (default: NEAR;RAND)\n"
      "  --deltas SPECS        ';'-separated SimConfig overrides\n"
      "  --reps N              replication seeds 1..N (default: 2)\n"
      "  --seeds LIST          explicit ','-separated seeds (overrides --reps)\n"
      "  --threads N           concurrent cells, 0 = hardware (default: 1)\n"
      "\n"
      "known workloads:   %s\n"
      "known scenarios:   %s\n"
      "known dispatchers: %s\n",
      argv0, argv0, WorkloadCatalog::Global().RosterString().c_str(),
      ScenarioCatalog::Global().RosterString().c_str(),
      DispatcherRegistry::Global().RosterString().c_str());
  return 2;
}

/// `campaign convert <trips.csv> <out.trace> [...]` — the tools/
/// tlc_to_trace converter reachable from the campaign CLI, so the whole
/// stream-and-sweep path is drivable from one binary.
int RunConvert(int argc, char** argv) {
  if (argc < 4) return Usage(argv[0]);
  const std::string csv_path = argv[2];
  const std::string trace_path = argv[3];
  int drivers = 3000;
  TlcParseOptions options;
  for (int i = 4; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    auto numeric = [&](const char* flag) -> int64_t {
      StatusOr<int64_t> v = ParseInt64(value(flag));
      if (!v.ok()) {
        std::fprintf(stderr, "bad value for %s\n", flag);
        std::exit(2);
      }
      return *v;
    };
    if (std::strcmp(argv[i], "--drivers") == 0) {
      drivers = static_cast<int>(numeric("--drivers"));
    } else if (std::strcmp(argv[i], "--day") == 0) {
      options.day_filter = static_cast<int>(numeric("--day"));
    } else if (std::strcmp(argv[i], "--max-orders") == 0) {
      options.max_orders = numeric("--max-orders");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = static_cast<uint64_t>(numeric("--seed"));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  TlcParseStats stats;
  Status st =
      ConvertTlcCsvToTrace(csv_path, trace_path, drivers, options, &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "convert failed: %s\n", st.ToString().c_str());
    return 1;
  }
  StatusOr<OrderTraceInfo> info = ReadOrderTraceInfo(trace_path);
  if (!info.ok()) {
    std::fprintf(stderr, "written trace fails validation: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "kept %lld of %lld rows -> %s (%lld orders, %lld drivers, %lld "
      "bytes)\nrun it with: --workloads \"trace:path=%s\"\n",
      (long long)stats.rows_kept, (long long)stats.rows_total,
      trace_path.c_str(), (long long)info->order_count,
      (long long)info->driver_count, (long long)info->file_bytes,
      trace_path.c_str());
  return 0;
}

std::vector<std::string> SplitSpecs(const std::string& list) {
  std::vector<std::string> out;
  for (std::string_view part : SplitString(list, ';')) {
    std::string_view trimmed = StripAsciiWhitespace(part);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

void PrintReport(const CampaignReport& report, const std::string& dir) {
  std::printf("cells: %zu  (executed %lld, loaded %lld, failed %lld)\n",
              report.cells.size(), (long long)report.executed,
              (long long)report.loaded, (long long)report.failed);
  for (const CellOutcome& outcome : report.cells) {
    if (outcome.source != CellOutcome::Source::kFailed) continue;
    std::printf("  FAILED %s: %s\n", outcome.cell.key.c_str(),
                outcome.error.c_str());
  }
  std::printf(
      "\n%-28s %-24s %-14s %4s %12s %9s %9s\n", "workload", "scenario",
      "dispatcher", "n", "revenue", "service%", "wait-s");
  for (const GroupSummary& s : report.summaries) {
    std::string dispatcher = s.dispatcher;
    if (!s.config_delta.empty()) dispatcher += " [" + s.config_delta + "]";
    std::printf("%-28.28s %-24.24s %-14.14s %4lld %12.4e %8.2f%% %9.1f\n",
                s.workload.c_str(), s.scenario.c_str(), dispatcher.c_str(),
                (long long)s.replications, s.revenue.mean(),
                100.0 * s.service_rate.mean(), s.wait_mean_s.mean());
  }
  std::printf("\ncampaign dir: %s\n", dir.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string command = argv[1];
  if (command == "convert") return RunConvert(argc, argv);
  const std::string dir = argv[2];
  if (command != "run" && command != "resume" && command != "summarize") {
    return Usage(argv[0]);
  }

  CampaignSpec spec;
  spec.name = "demo";
  spec.workloads = {"nyc:orders=4000,drivers=60"};
  spec.dispatchers = {"NEAR", "RAND"};
  int reps = 2;
  CampaignOptions options;

  bool explicit_seeds = false;
  for (int i = 3; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--name") == 0) {
      spec.name = value("--name");
    } else if (std::strcmp(argv[i], "--workloads") == 0) {
      spec.workloads = SplitSpecs(value("--workloads"));
    } else if (std::strcmp(argv[i], "--scenarios") == 0) {
      spec.scenarios = SplitSpecs(value("--scenarios"));
    } else if (std::strcmp(argv[i], "--dispatchers") == 0) {
      spec.dispatchers = SplitSpecs(value("--dispatchers"));
    } else if (std::strcmp(argv[i], "--deltas") == 0) {
      spec.config_deltas = SplitSpecs(value("--deltas"));
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      StatusOr<int64_t> n = ParseInt64(value("--reps"));
      if (!n.ok() || *n < 1) {
        std::fprintf(stderr, "--reps needs a positive integer\n");
        return 2;
      }
      reps = static_cast<int>(*n);
    } else if (std::strcmp(argv[i], "--seeds") == 0) {
      explicit_seeds = true;
      spec.seeds.clear();
      for (std::string_view s : SplitString(value("--seeds"), ',')) {
        StatusOr<int64_t> seed = ParseInt64(StripAsciiWhitespace(s));
        if (!seed.ok()) {
          std::fprintf(stderr, "bad --seeds entry: %s\n",
                       seed.status().ToString().c_str());
          return 2;
        }
        spec.seeds.push_back(static_cast<uint64_t>(*seed));
      }
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      StatusOr<int64_t> n = ParseInt64(value("--threads"));
      if (!n.ok() || *n < 0) {
        std::fprintf(stderr, "--threads needs an integer >= 0\n");
        return 2;
      }
      options.num_threads = static_cast<int>(*n);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  if (!explicit_seeds) {
    for (int s = 1; s <= reps; ++s) {
      spec.seeds.push_back(static_cast<uint64_t>(s));
    }
  }

  if (command != "run") {
    // The campaign directory is the source of truth for its own grid.
    StatusOr<CampaignSpec> saved = ArtifactStore(dir).LoadSpec();
    if (!saved.ok()) {
      std::fprintf(stderr, "cannot %s '%s': %s\n", command.c_str(),
                   dir.c_str(), saved.status().ToString().c_str());
      return 1;
    }
    spec = std::move(saved).value();
  }

  CampaignRunner runner(std::move(spec), dir);
  StatusOr<CampaignReport> report =
      command == "run"      ? runner.Run(options)
      : command == "resume" ? runner.Resume(options)
                            : runner.Summarize();
  if (!report.ok()) {
    std::fprintf(stderr, "campaign %s failed: %s\n", command.c_str(),
                 report.status().ToString().c_str());
    return 1;
  }
  PrintReport(*report, dir);
  return report->failed == 0 ? 0 : 1;
}
