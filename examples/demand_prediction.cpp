// Demand-prediction walkthrough: train HA / LR / GBRT / the DeepST
// surrogate on a multi-week history, compare held-out accuracy, plot a
// one-day forecast curve for the busiest region, and plug the trained
// forecast into a simulation through SimulationBuilder::WithForecast.
// (New here? Read examples/quickstart.cpp first — it introduces the
// SimulationBuilder surface this example builds on.)
//
// Usage: ./build/examples/demand_prediction [training_days]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "api/api.h"
#include "prediction/predictor.h"

using namespace mrvd;

int main(int argc, char** argv) {
  int train_days = argc > 1 ? std::atoi(argv[1]) : 28;

  GeneratorConfig cfg;
  cfg.orders_per_day = 40000;
  NycLikeGenerator generator(cfg);
  // History: train_days of training plus 2 evaluation days.
  DemandHistory history = generator.GenerateHistory(train_days + 2, 48);
  int eval_start = train_days * 48;

  std::printf("history: %d days x 48 slots x %d regions\n",
              history.num_days(), history.num_regions());

  std::vector<std::unique_ptr<DemandPredictor>> predictors;
  predictors.push_back(MakeHistoricalAveragePredictor());
  predictors.push_back(MakeLinearRegressionPredictor());
  predictors.push_back(MakeGbrtPredictor());
  predictors.push_back(MakeDeepStSurrogatePredictor());

  std::printf("\n%-8s %10s %12s %10s\n", "model", "RMSE(%)", "RealRMSE",
              "MAE");
  for (auto& p : predictors) {
    Status st = p->Train(history, generator.grid());
    if (!st.ok()) {
      std::printf("%-8s training failed: %s\n", p->name().c_str(),
                  st.ToString().c_str());
      continue;
    }
    auto eval = EvaluatePredictor(*p, history, eval_start);
    std::printf("%-8s %10.2f %12.3f %10.3f\n", eval.name.c_str(),
                eval.rel_rmse_pct, eval.real_rmse, eval.mae);
  }

  // Forecast curve for the busiest region on the first evaluation day.
  int busiest = 0;
  double best = -1;
  for (int r = 0; r < history.num_regions(); ++r) {
    double total = 0;
    for (int s = 0; s < 48; ++s) total += history.at(train_days, s, r);
    if (total > best) {
      best = total;
      busiest = r;
    }
  }
  auto& deepst = predictors.back();
  auto forecast = DemandForecast::Build(*deepst, history, train_days);
  if (!forecast.ok()) return 1;

  std::printf("\nRegion %d, evaluation day: actual vs DeepST forecast\n",
              busiest);
  for (int s = 0; s < 48; s += 2) {
    double actual = history.at(train_days, s, busiest);
    double predicted = forecast->SlotCount(s, busiest);
    std::printf("%02d:%02d  actual %6.1f  pred %6.1f  |", (s * 30) / 60,
                (s * 30) % 60, actual, predicted);
    int bar = static_cast<int>(std::min(predicted, 60.0));
    for (int i = 0; i < bar; ++i) std::printf("*");
    std::printf("\n");
  }

  // Close the loop: the trained forecast drives a prediction-guided
  // dispatcher through the experiment API (a morning slice keeps it quick).
  StatusOr<Simulation> sim =
      SimulationBuilder()
          .GenerateNycDay(/*day_index=*/train_days, /*num_drivers=*/200, cfg)
          .WithForecast(std::move(*forecast))
          .HorizonSeconds(6 * 3600.0)
          .BatchInterval(10.0)
          .Build();
  if (!sim.ok()) return 1;
  StatusOr<SimResult> run = sim->Run("IRG");
  if (!run.ok()) return 1;
  std::printf(
      "\nIRG under the DeepST forecast (06h slice): served %lld / %lld "
      "orders, revenue %.3e\n",
      (long long)run->served_orders, (long long)run->total_orders,
      run->total_revenue);
  return 0;
}
