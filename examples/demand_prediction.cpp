// Demand-prediction walkthrough: train HA / LR / GBRT / the DeepST
// surrogate on a multi-week history, compare held-out accuracy, and plot a
// one-day forecast curve for the busiest region.
//
// Usage: ./build/examples/demand_prediction [training_days]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "prediction/forecast.h"
#include "prediction/predictor.h"
#include "workload/generator.h"

using namespace mrvd;

int main(int argc, char** argv) {
  int train_days = argc > 1 ? std::atoi(argv[1]) : 28;

  GeneratorConfig cfg;
  cfg.orders_per_day = 40000;
  NycLikeGenerator generator(cfg);
  // History: train_days of training plus 2 evaluation days.
  DemandHistory history = generator.GenerateHistory(train_days + 2, 48);
  int eval_start = train_days * 48;

  std::printf("history: %d days x 48 slots x %d regions\n",
              history.num_days(), history.num_regions());

  std::vector<std::unique_ptr<DemandPredictor>> predictors;
  predictors.push_back(MakeHistoricalAveragePredictor());
  predictors.push_back(MakeLinearRegressionPredictor());
  predictors.push_back(MakeGbrtPredictor());
  predictors.push_back(MakeDeepStSurrogatePredictor());

  std::printf("\n%-8s %10s %12s %10s\n", "model", "RMSE(%)", "RealRMSE",
              "MAE");
  for (auto& p : predictors) {
    Status st = p->Train(history, generator.grid());
    if (!st.ok()) {
      std::printf("%-8s training failed: %s\n", p->name().c_str(),
                  st.ToString().c_str());
      continue;
    }
    auto eval = EvaluatePredictor(*p, history, eval_start);
    std::printf("%-8s %10.2f %12.3f %10.3f\n", eval.name.c_str(),
                eval.rel_rmse_pct, eval.real_rmse, eval.mae);
  }

  // Forecast curve for the busiest region on the first evaluation day.
  int busiest = 0;
  double best = -1;
  for (int r = 0; r < history.num_regions(); ++r) {
    double total = 0;
    for (int s = 0; s < 48; ++s) total += history.at(train_days, s, r);
    if (total > best) {
      best = total;
      busiest = r;
    }
  }
  auto& deepst = predictors.back();
  auto forecast = DemandForecast::Build(*deepst, history, train_days);
  if (!forecast.ok()) return 1;

  std::printf("\nRegion %d, evaluation day: actual vs DeepST forecast\n",
              busiest);
  for (int s = 0; s < 48; s += 2) {
    double actual = history.at(train_days, s, busiest);
    double predicted = forecast->SlotCount(s, busiest);
    std::printf("%02d:%02d  actual %6.1f  pred %6.1f  |", (s * 30) / 60,
                (s * 30) % 60, actual, predicted);
    int bar = static_cast<int>(std::min(predicted, 60.0));
    for (int i = 0; i < bar; ++i) std::printf("*");
    std::printf("\n");
  }
  return 0;
}
