// A scripted operations day through the scenario event subsystem: a
// two-shift fleet (the evening half is off duty until mid-day), a rider
// cancellation hazard, and morning + evening demand surges — run under the
// full dispatcher roster on the same base workload.
// (New here? Read examples/quickstart.cpp first — it introduces the
// SimulationBuilder surface this example builds on.)
//
// The roster comes straight from the DispatcherRegistry (no hand-written
// name list), the runs execute through ExperimentRunner, and the first run
// carries an ObserverChain composing two independent links — a narrator
// printing shift/surge transitions and a per-hour cancellation profile —
// where the old API offered a single observer slot.
//
// Usage:
//   ./build/examples/scenario_day [orders_per_day] [num_drivers]
#include <climits>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "api/api.h"
#include "scenario/generator.h"
#include "util/strings.h"

using namespace mrvd;

namespace {

/// Prints shift changes and surge transitions as the engine applies them.
class TimelineNarrator : public SimObserver {
 public:
  void OnDriverShiftChange(double now, DriverId driver_id,
                           bool signed_on) override {
    ++changes_;
    if (changes_ % 100 == 1) {
      std::printf("  %s driver %lld signs %s (change #%lld)\n",
                  Clock(now).c_str(), (long long)driver_id,
                  signed_on ? "on" : "off", (long long)changes_);
    }
  }
  void OnSurgeChange(double now, const SurgeWindow& w, bool active) override {
    std::printf("  %s surge x%.1f %s\n", Clock(now).c_str(), w.multiplier,
                active ? "begins" : "ends");
  }

 private:
  static std::string Clock(double now) {
    int minutes = static_cast<int>(now / 60.0);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%02d:%02d", minutes / 60, minutes % 60);
    return buf;
  }
  int64_t changes_ = 0;
};

/// Per-hour cancellation counts — an independent chain link.
class CancellationProfile : public SimObserver {
 public:
  void OnRiderCancelled(double now, const Order&) override {
    int h = static_cast<int>(now / 3600.0);
    ++cancelled_by_hour_[h < 0 ? 0 : (h > 23 ? 23 : h)];
  }

  void Print(const std::string& label) const {
    std::printf("\nhourly cancellations (%s):\n  hour  cancelled\n",
                label.c_str());
    for (int h = 0; h < 24; ++h) {
      if (cancelled_by_hour_[h] == 0) continue;
      std::printf("  %4d %10lld\n", h, (long long)cancelled_by_hour_[h]);
    }
  }

 private:
  int64_t cancelled_by_hour_[24] = {};
};

}  // namespace

int main(int argc, char** argv) {
  // Strict parsing: "3OO" or "30k" is a usage error, not a silent 3 / 30.
  double orders = 30000.0;
  int drivers = 300;
  if (argc > 1) {
    StatusOr<double> v = ParseDouble(argv[1]);
    if (!v.ok() || !(*v > 0.0) || !std::isfinite(*v)) {
      std::fprintf(stderr, "bad orders_per_day '%s'\nusage: %s "
                   "[orders_per_day] [num_drivers]\n", argv[1], argv[0]);
      return 2;
    }
    orders = *v;
  }
  if (argc > 2) {
    StatusOr<int64_t> v = ParseInt64(argv[2]);
    if (!v.ok() || *v < 1 || *v > INT_MAX) {
      std::fprintf(stderr, "bad num_drivers '%s'\nusage: %s "
                   "[orders_per_day] [num_drivers]\n", argv[2], argv[0]);
      return 2;
    }
    drivers = static_cast<int>(*v);
  }

  GeneratorConfig gen_cfg;
  gen_cfg.orders_per_day = orders;
  NycLikeGenerator generator(gen_cfg);
  Workload day = generator.GenerateDay(/*day_index=*/3, drivers);
  std::printf("generated %zu orders, %d drivers\n", day.orders.size(),
              drivers);

  // The scripted day: two shifts changing at noon with a 30-minute
  // overlap, a 6%% cancellation hazard, and two rush-hour surges.
  ScenarioDayConfig day_cfg;
  day_cfg.two_shift_fleet = true;
  day_cfg.shift_change_seconds = 12 * 3600.0;
  day_cfg.shift_overlap_seconds = 1800.0;
  day_cfg.cancel_probability = 0.06;
  day_cfg.surges.push_back(RushHourSurge(7.5 * 3600.0, 9.5 * 3600.0, 1.8));
  day_cfg.surges.push_back(RushHourSurge(17.0 * 3600.0, 19.0 * 3600.0, 2.2));
  ScenarioScript script = BuildScenarioDay(day, day_cfg);
  std::printf("scenario: %zu events (two-shift fleet, 6%% cancellation "
              "hazard, AM+PM surges)\n\n",
              script.size());

  // One environment for every run: the workload, the realized-counts
  // oracle forecast (so the surge multipliers act on a live prediction),
  // and the script. Paper defaults: Δ=3 s, t_c=20 min.
  StatusOr<Simulation> sim = SimulationBuilder()
                                 .WithWorkload(std::move(day), generator.grid())
                                 .WithOracleForecast()
                                 .WithScenario(std::move(script))
                                 .Build();
  if (!sim.ok()) {
    std::fprintf(stderr, "build failed: %s\n", sim.status().ToString().c_str());
    return 1;
  }

  // The registry IS the roster — alphabetical, UPPER automatically running
  // with zero pickup travel via its registered trait.
  const std::vector<std::string> roster = DispatcherRegistry::Global().Names();

  // The first run narrates the timeline and profiles cancellations through
  // one ObserverChain: two links, one observer slot.
  TimelineNarrator narrator;
  CancellationProfile profile;
  ObserverChain chain;
  chain.Add(&narrator).Add(&profile);

  std::vector<RunSpec> specs;
  for (size_t i = 0; i < roster.size(); ++i) {
    RunSpec spec(roster[i]);
    if (i == 0) spec.observer = &chain;
    specs.push_back(spec);
  }

  std::printf("timeline (%s run):\n", roster.front().c_str());
  ExperimentRunner runner(*sim);  // serial: keeps the narration readable
  StatusOr<std::vector<RunResult>> results = runner.RunAll(specs);
  if (!results.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-8s %12s %9s %9s %9s %9s %9s\n", "approach", "revenue",
              "served", "reneged", "cancel", "svc-rate", "shift-chg");
  for (const RunResult& run : *results) {
    const SimResult& r = run.result;
    std::printf("%-8s %12.4e %9lld %9lld %9lld %8.1f%% %9lld\n",
                run.label.c_str(), r.total_revenue,
                (long long)r.served_orders, (long long)r.reneged_orders,
                (long long)r.cancelled_orders, 100.0 * r.ServiceRate(),
                (long long)(r.driver_sign_ons + r.driver_sign_offs));
  }
  profile.Print(roster.front());
  return 0;
}
