// A scripted operations day through the scenario event subsystem: a
// two-shift fleet (the evening half is off duty until mid-day), a rider
// cancellation hazard, and morning + evening demand surges — run under the
// full dispatcher roster on the same base workload. A timeline observer
// prints the shift changes and surge transitions as the engine applies
// them, plus a per-hour cancellation profile for the winning approach.
//
// Usage:
//   ./build/examples/scenario_day [orders_per_day] [num_drivers]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "dispatch/dispatchers.h"
#include "geo/travel.h"
#include "prediction/forecast.h"
#include "prediction/predictor.h"
#include "scenario/generator.h"
#include "sim/engine.h"
#include "workload/generator.h"

using namespace mrvd;

namespace {

/// Prints shift/surge transitions once (for the first run) and keeps
/// per-hour cancellation counts.
class TimelineObserver : public SimObserver {
 public:
  explicit TimelineObserver(bool narrate) : narrate_(narrate) {}

  void OnDriverShiftChange(double now, DriverId driver_id,
                           bool signed_on) override {
    ++(signed_on ? sign_ons_ : sign_offs_);
    if (narrate_ && (sign_ons_ + sign_offs_) % 100 == 1) {
      std::printf("  %s driver %lld signs %s (change #%lld)\n",
                  Clock(now).c_str(), (long long)driver_id,
                  signed_on ? "on" : "off",
                  (long long)(sign_ons_ + sign_offs_));
    }
  }
  void OnSurgeChange(double now, const SurgeWindow& w, bool active) override {
    if (narrate_) {
      std::printf("  %s surge x%.1f %s\n", Clock(now).c_str(), w.multiplier,
                  active ? "begins" : "ends");
    }
  }
  void OnRiderCancelled(double now, const Order&) override {
    ++cancelled_by_hour_[Hour(now)];
  }

  void PrintCancellationProfile() const {
    std::printf("\nhourly cancellations (IRG):\n  hour  cancelled\n");
    for (int h = 0; h < 24; ++h) {
      if (cancelled_by_hour_[h] == 0) continue;
      std::printf("  %4d %10lld\n", h, (long long)cancelled_by_hour_[h]);
    }
  }

 private:
  static int Hour(double now) {
    int h = static_cast<int>(now / 3600.0);
    return h < 0 ? 0 : (h > 23 ? 23 : h);
  }
  static std::string Clock(double now) {
    int minutes = static_cast<int>(now / 60.0);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%02d:%02d", minutes / 60, minutes % 60);
    return buf;
  }

  bool narrate_;
  int64_t sign_ons_ = 0, sign_offs_ = 0;
  int64_t cancelled_by_hour_[24] = {};
};

}  // namespace

int main(int argc, char** argv) {
  double orders = argc > 1 ? std::atof(argv[1]) : 30000.0;
  int drivers = argc > 2 ? std::atoi(argv[2]) : 300;

  GeneratorConfig gen_cfg;
  gen_cfg.orders_per_day = orders;
  NycLikeGenerator generator(gen_cfg);
  Workload day = generator.GenerateDay(/*day_index=*/3, drivers);
  std::printf("generated %zu orders, %d drivers\n", day.orders.size(),
              drivers);

  // The scripted day: two shifts changing at noon with a 30-minute
  // overlap, a 6%% cancellation hazard, and two rush-hour surges.
  ScenarioDayConfig day_cfg;
  day_cfg.two_shift_fleet = true;
  day_cfg.shift_change_seconds = 12 * 3600.0;
  day_cfg.shift_overlap_seconds = 1800.0;
  day_cfg.cancel_probability = 0.06;
  day_cfg.surges.push_back(RushHourSurge(7.5 * 3600.0, 9.5 * 3600.0, 1.8));
  day_cfg.surges.push_back(RushHourSurge(17.0 * 3600.0, 19.0 * 3600.0, 2.2));
  ScenarioScript script = BuildScenarioDay(day, day_cfg);
  std::printf("scenario: %zu events (two-shift fleet, 6%% cancellation "
              "hazard, AM+PM surges)\n\n",
              script.size());

  // Oracle forecast from the day's realized counts, so the surge
  // multipliers act on a live demand prediction.
  DemandHistory realized = generator.RealizedCounts(day, 48);
  auto oracle = MakeOraclePredictor();
  auto forecast = DemandForecast::Build(*oracle, realized, /*eval_day=*/0);
  if (!forecast.ok()) {
    std::fprintf(stderr, "forecast failed: %s\n",
                 forecast.status().ToString().c_str());
    return 1;
  }

  StraightLineCostModel cost(11.0, 1.3);
  SimConfig cfg;  // paper defaults: Δ=3 s, t_c=20 min

  std::vector<std::pair<std::string, std::unique_ptr<Dispatcher>>> roster;
  roster.emplace_back("RAND", MakeRandomDispatcher(1));
  roster.emplace_back("NEAR", MakeNearestDispatcher());
  roster.emplace_back("LTG", MakeLongTripGreedyDispatcher());
  roster.emplace_back("POLAR", MakePolarDispatcher());
  roster.emplace_back("IRG", MakeIrgDispatcher());
  roster.emplace_back("LS", MakeLocalSearchDispatcher());
  roster.emplace_back("SHORT", MakeShortDispatcher());
  roster.emplace_back("UPPER", MakeUpperBoundDispatcher());

  TimelineObserver irg_timeline(/*narrate=*/false);
  bool first = true;
  for (auto& [name, dispatcher] : roster) {
    SimConfig run_cfg = cfg;
    if (name == "UPPER") run_cfg.zero_pickup_travel = true;
    Simulator sim(run_cfg, day, generator.grid(), cost, &forecast.value());
    TimelineObserver narrator(/*narrate=*/first);
    if (first) std::printf("timeline (%s run):\n", name.c_str());
    SimObserver* obs = name == "IRG" ? static_cast<SimObserver*>(&irg_timeline)
                                     : &narrator;
    SimResult r = sim.Run(*dispatcher, script, obs);
    if (first) {
      std::printf("\n%-8s %12s %9s %9s %9s %9s %9s\n", "approach", "revenue",
                  "served", "reneged", "cancel", "svc-rate", "shift-chg");
    }
    first = false;
    std::printf("%-8s %12.4e %9lld %9lld %9lld %8.1f%% %9lld\n", name.c_str(),
                r.total_revenue, (long long)r.served_orders,
                (long long)r.reneged_orders, (long long)r.cancelled_orders,
                100.0 * r.ServiceRate(),
                (long long)(r.driver_sign_ons + r.driver_sign_offs));
  }
  irg_timeline.PrintCancellationProfile();
  return 0;
}
