// Full-day NYC-style simulation comparing every dispatching approach on the
// same workload — the paper's evaluation loop in miniature, expressed as an
// ExperimentRunner sweep over the DispatcherRegistry's roster. Also shows
// the staged engine's SimObserver hooks: a custom observer collects a
// per-hour served/reneged breakdown for one approach without touching the
// engine.
// (New here? Read examples/quickstart.cpp first — it introduces the
// SimulationBuilder surface this example builds on.)
//
// Usage:
//   ./build/examples/nyc_day_simulation [options] [orders_per_day]
//                                       [num_drivers] [tlc.csv]
// Options:
//   --orders N      orders per generated day        (default 30000)
//   --drivers N     fleet size                      (default 300)
//   --tlc PATH      real TLC trip CSV instead of the generator
//   --threads N     dispatch worker threads; 0 = hardware concurrency
//                   (default 1 = serial)
//   --shards N      region shards for the parallel pipeline; 0 derives
//                   2x the worker count (default 0)
//   --scenario S    "none" (default) or "day": a scripted two-shift +
//                   cancellation-hazard + rush-hour-surge day through the
//                   scenario event subsystem (see examples/scenario_day.cpp
//                   for the full roster under that script)
//   --stream PATH   stream a binary order trace (tools/tlc_to_trace or
//                   `campaign convert`) instead of materialising a workload;
//                   peak memory stays O(batch) regardless of trace length.
//                   Prediction-free and scenario-free: the forecast needs
//                   the full day up front, which streaming deliberately
//                   avoids.
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/api.h"
#include "geo/grid.h"
#include "prediction/predictor.h"
#include "scenario/generator.h"
#include "util/strings.h"
#include "workload/order_stream.h"
#include "workload/tlc_parser.h"

using namespace mrvd;

namespace {

/// Hour-of-day service breakdown via the engine's observer hooks.
class HourlyBreakdown : public SimObserver {
 public:
  void OnAssignmentApplied(double now, const AssignmentEvent&) override {
    ++served_[Hour(now)];
  }
  void OnRiderReneged(double now, const Order&) override {
    ++reneged_[Hour(now)];
  }

  void Print() const {
    std::printf("\nhourly breakdown (IRG):\n  hour   served  reneged\n");
    for (int h = 0; h < 24; ++h) {
      if (served_[h] == 0 && reneged_[h] == 0) continue;
      std::printf("  %4d %8lld %8lld\n", h, (long long)served_[h],
                  (long long)reneged_[h]);
    }
  }

 private:
  static int Hour(double now) {
    int h = static_cast<int>(now / 3600.0);
    return h < 0 ? 0 : (h > 23 ? 23 : h);
  }
  int64_t served_[24] = {};
  int64_t reneged_[24] = {};
};

/// Command-line configuration; positional [orders] [drivers] [tlc.csv] are
/// still accepted for backward compatibility.
struct CliOptions {
  double orders = 30000.0;
  int drivers = 300;
  std::string tlc_path;
  std::string stream_path;
  int threads = 1;
  int shards = 0;
  std::string scenario = "none";
};

/// Full-consumption numeric parsing on top of util/strings.h: "3OO",
/// "30k" and int-overflowing values are rejected, not silently truncated
/// the way atof/atoi would.
bool ParseNumber(const char* s, double* out) {
  StatusOr<double> v = ParseDouble(s);
  if (!v.ok()) return false;
  *out = v.value();
  return true;
}

bool ParseNumber(const char* s, int* out) {
  StatusOr<int64_t> v = ParseInt64(s);
  if (!v.ok() || v.value() < INT_MIN || v.value() > INT_MAX) return false;
  *out = static_cast<int>(v.value());
  return true;
}

bool ParseCli(int argc, char** argv, CliOptions* opt) {
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // A flag's value must not itself look like a flag — "--orders --drivers
    // 500" is a missing value, not orders = 0.
    auto value = [&]() -> const char* {
      if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    auto numeric = [&](auto* out) {
      const char* v = value();
      if (v == nullptr) return false;
      if (!ParseNumber(v, out)) {
        std::fprintf(stderr, "bad value for %s: %s\n", arg.c_str(), v);
        return false;
      }
      return true;
    };
    if (arg == "--orders") {
      if (!numeric(&opt->orders)) return false;
    } else if (arg == "--drivers") {
      if (!numeric(&opt->drivers)) return false;
    } else if (arg == "--tlc") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->tlc_path = v;
    } else if (arg == "--stream") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->stream_path = v;
    } else if (arg == "--threads") {
      if (!numeric(&opt->threads)) return false;
    } else if (arg == "--shards") {
      if (!numeric(&opt->shards)) return false;
    } else if (arg == "--scenario") {
      const char* v = value();
      if (v == nullptr || (std::strcmp(v, "none") != 0 &&
                           std::strcmp(v, "day") != 0)) {
        return false;
      }
      opt->scenario = v;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else if (positional == 0) {
      if (!ParseNumber(arg.c_str(), &opt->orders)) return false;
      ++positional;
    } else if (positional == 1) {
      if (!ParseNumber(arg.c_str(), &opt->drivers)) return false;
      ++positional;
    } else if (positional == 2) {
      opt->tlc_path = arg;
      ++positional;
    } else {
      return false;
    }
  }
  return true;
}

/// Sweep the full dispatcher roster over an assembled environment and print
/// the comparison table (plus the IRG hourly breakdown) — shared by the
/// materialised and streamed paths so their output is comparable line for
/// line.
int SweepAndPrint(const Simulation& sim) {
  HourlyBreakdown hourly;
  std::vector<RunSpec> specs;
  for (const std::string& name : DispatcherRegistry::Global().Names()) {
    RunSpec spec(name);
    if (name == "IRG") spec.observer = &hourly;
    specs.push_back(spec);
  }

  ExperimentRunner runner(sim);
  StatusOr<std::vector<RunResult>> results = runner.RunAll(specs);
  if (!results.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-8s %12s %10s %10s %8s %12s %12s %10s\n", "approach",
              "revenue", "served", "reneged", "cancel", "svc-rate",
              "batch-ms", "build-ms");
  for (const RunResult& run : *results) {
    const SimResult& r = run.result;
    std::printf("%-8s %12.4e %10lld %10lld %8lld %11.1f%% %12.3f %10.4f\n",
                run.label.c_str(), r.total_revenue, (long long)r.served_orders,
                (long long)r.reneged_orders, (long long)r.cancelled_orders,
                100.0 * r.ServiceRate(), r.batch_seconds.mean() * 1e3,
                r.batch_build_seconds.mean() * 1e3);
  }
  hourly.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!ParseCli(argc, argv, &opt)) {
    std::fprintf(stderr,
                 "usage: %s [--orders N] [--drivers N] [--tlc PATH] "
                 "[--stream TRACE] [--threads N] [--shards N] "
                 "[--scenario none|day]\n",
                 argv[0]);
    return 2;
  }

  if (!opt.stream_path.empty()) {
    if (!opt.tlc_path.empty() || opt.scenario != "none") {
      std::fprintf(stderr,
                   "--stream is exclusive with --tlc and --scenario (the "
                   "streamed day is prediction- and scenario-free)\n");
      return 2;
    }
    StatusOr<OrderTraceInfo> info = ReadOrderTraceInfo(opt.stream_path);
    if (!info.ok()) {
      std::fprintf(stderr, "cannot read trace: %s\n",
                   info.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "streaming %s: %lld orders + %lld drivers, t=[%.0f, %.0f]s, "
        "horizon %.0fs\n",
        opt.stream_path.c_str(), (long long)info->order_count,
        (long long)info->driver_count, info->first_request_time,
        info->last_request_time, info->horizon_seconds);
    StatusOr<Simulation> sim = SimulationBuilder()
                                   .StreamTrace(opt.stream_path,
                                                MakeNycGrid16x16())
                                   .Threads(opt.threads)
                                   .Shards(opt.shards)
                                   .Build();
    if (!sim.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   sim.status().ToString().c_str());
      return 1;
    }
    return SweepAndPrint(*sim);
  }

  GeneratorConfig gen_cfg;
  gen_cfg.orders_per_day = opt.orders;
  NycLikeGenerator generator(gen_cfg);

  Workload day;
  if (!opt.tlc_path.empty()) {
    auto parsed = ParseTlcCsv(opt.tlc_path.c_str(), opt.drivers);
    if (!parsed.ok()) {
      std::fprintf(stderr, "TLC parse failed: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    day = std::move(parsed).value();
    std::printf("loaded %zu TLC orders\n", day.orders.size());
  } else {
    day = generator.GenerateDay(3, opt.drivers);
    std::printf("generated %zu synthetic orders\n", day.orders.size());
  }

  // Optional scripted scenario on top of the base workload.
  ScenarioScript script;
  if (opt.scenario == "day") {
    ScenarioDayConfig day_cfg;
    day_cfg.two_shift_fleet = true;
    day_cfg.cancel_probability = 0.05;
    day_cfg.surges.push_back(RushHourSurge(7.5 * 3600.0, 9.5 * 3600.0, 1.8));
    day_cfg.surges.push_back(RushHourSurge(17.0 * 3600.0, 19.0 * 3600.0, 2.2));
    script = BuildScenarioDay(day, day_cfg);
    std::printf("scenario \"day\": %zu scripted events\n", script.size());
  }

  // DeepST-surrogate forecast trained on 21 days of history.
  DemandHistory train = generator.GenerateHistory(22, 48);
  DemandHistory realized = generator.RealizedCounts(day, 48);
  for (int s = 0; s < 48; ++s) {
    for (int r = 0; r < train.num_regions(); ++r) {
      train.set(21, s, r, realized.at(0, s, r));
    }
  }
  auto deepst = MakeDeepStSurrogatePredictor();
  if (Status st = deepst->Train(train, generator.grid()); !st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto forecast = DemandForecast::Build(*deepst, train, /*eval_day=*/21);
  if (!forecast.ok()) return 1;

  // One assembled environment; the runner sweeps the registry's whole
  // roster over it (UPPER's zero-pickup-travel trait applies itself).
  StatusOr<Simulation> sim = SimulationBuilder()
                                 .WithWorkload(std::move(day), generator.grid())
                                 .WithForecast(std::move(forecast).value())
                                 .WithScenario(std::move(script))
                                 .Threads(opt.threads)
                                 .Shards(opt.shards)
                                 .Build();
  if (!sim.ok()) {
    std::fprintf(stderr, "build failed: %s\n", sim.status().ToString().c_str());
    return 1;
  }

  return SweepAndPrint(*sim);
}
