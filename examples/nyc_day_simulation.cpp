// Full-day NYC-style simulation comparing every dispatching approach on the
// same workload — the paper's evaluation loop in miniature. Also shows the
// staged engine's SimObserver hooks: a custom observer collects a per-hour
// served/reneged breakdown for the winning approach without touching the
// engine.
//
// Usage:
//   ./build/examples/nyc_day_simulation [orders_per_day] [num_drivers]
// A real TLC trip CSV can be substituted for the generator by passing its
// path as a third argument.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "dispatch/dispatchers.h"
#include "geo/travel.h"
#include "prediction/forecast.h"
#include "prediction/predictor.h"
#include "sim/engine.h"
#include "workload/generator.h"
#include "workload/tlc_parser.h"

using namespace mrvd;

namespace {

/// Hour-of-day service breakdown via the engine's observer hooks.
class HourlyBreakdown : public SimObserver {
 public:
  void OnAssignmentApplied(double now, const AssignmentEvent&) override {
    ++served_[Hour(now)];
  }
  void OnRiderReneged(double now, const Order&) override {
    ++reneged_[Hour(now)];
  }

  void Print() const {
    std::printf("\nhourly breakdown (IRG):\n  hour   served  reneged\n");
    for (int h = 0; h < 24; ++h) {
      if (served_[h] == 0 && reneged_[h] == 0) continue;
      std::printf("  %4d %8lld %8lld\n", h, (long long)served_[h],
                  (long long)reneged_[h]);
    }
  }

 private:
  static int Hour(double now) {
    int h = static_cast<int>(now / 3600.0);
    return h < 0 ? 0 : (h > 23 ? 23 : h);
  }
  int64_t served_[24] = {};
  int64_t reneged_[24] = {};
};

}  // namespace

int main(int argc, char** argv) {
  double orders = argc > 1 ? std::atof(argv[1]) : 30000.0;
  int drivers = argc > 2 ? std::atoi(argv[2]) : 300;

  GeneratorConfig gen_cfg;
  gen_cfg.orders_per_day = orders;
  NycLikeGenerator generator(gen_cfg);

  Workload day;
  if (argc > 3) {
    auto parsed = ParseTlcCsv(argv[3], drivers);
    if (!parsed.ok()) {
      std::fprintf(stderr, "TLC parse failed: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    day = std::move(parsed).value();
    std::printf("loaded %zu TLC orders\n", day.orders.size());
  } else {
    day = generator.GenerateDay(3, drivers);
    std::printf("generated %zu synthetic orders\n", day.orders.size());
  }

  // DeepST-surrogate forecast trained on 21 days of history.
  DemandHistory train = generator.GenerateHistory(22, 48);
  DemandHistory realized = generator.RealizedCounts(day, 48);
  for (int s = 0; s < 48; ++s) {
    for (int r = 0; r < train.num_regions(); ++r) {
      train.set(21, s, r, realized.at(0, s, r));
    }
  }
  auto deepst = MakeDeepStSurrogatePredictor();
  if (Status st = deepst->Train(train, generator.grid()); !st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto forecast = DemandForecast::Build(*deepst, train, /*eval_day=*/21);
  if (!forecast.ok()) return 1;

  StraightLineCostModel cost(11.0, 1.3);
  SimConfig cfg;  // paper defaults: Δ=3 s, t_c=20 min

  std::printf("\n%-8s %12s %10s %10s %12s %12s %10s\n", "approach",
              "revenue", "served", "reneged", "svc-rate", "batch-ms",
              "build-ms");
  std::vector<std::pair<std::string, std::unique_ptr<Dispatcher>>> approaches;
  approaches.emplace_back("RAND", MakeRandomDispatcher(1));
  approaches.emplace_back("NEAR", MakeNearestDispatcher());
  approaches.emplace_back("LTG", MakeLongTripGreedyDispatcher());
  approaches.emplace_back("POLAR", MakePolarDispatcher());
  approaches.emplace_back("IRG", MakeIrgDispatcher());
  approaches.emplace_back("LS", MakeLocalSearchDispatcher());
  approaches.emplace_back("SHORT", MakeShortDispatcher());
  HourlyBreakdown hourly;
  for (auto& [name, dispatcher] : approaches) {
    Simulator sim(cfg, day, generator.grid(), cost, &forecast.value());
    SimResult r = sim.Run(*dispatcher, name == "IRG" ? &hourly : nullptr);
    std::printf("%-8s %12.4e %10lld %10lld %11.1f%% %12.3f %10.4f\n",
                name.c_str(), r.total_revenue, (long long)r.served_orders,
                (long long)r.reneged_orders, 100.0 * r.ServiceRate(),
                r.batch_seconds.mean() * 1e3,
                r.batch_build_seconds.mean() * 1e3);
  }
  hourly.Print();

  // And the per-batch upper bound.
  SimConfig upper_cfg = cfg;
  upper_cfg.zero_pickup_travel = true;
  auto upper = MakeUpperBoundDispatcher();
  Simulator sim(upper_cfg, day, generator.grid(), cost, nullptr);
  SimResult r = sim.Run(*upper);
  std::printf("%-8s %12.4e %10lld %10s %11.1f%% %12.3f\n", "UPPER",
              r.total_revenue, (long long)r.served_orders, "-",
              100.0 * r.ServiceRate(), r.batch_seconds.mean() * 1e3);
  return 0;
}
