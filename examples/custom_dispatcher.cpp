// Extending the framework with a custom dispatcher.
// (New here? Read examples/quickstart.cpp first — it introduces the
// SimulationBuilder surface this example builds on.)
//
// Implements an urgency-aware greedy — riders closest to their pickup
// deadline are rescued first, ties broken by idle ratio — and
// SELF-REGISTERS it in the DispatcherRegistry with a typed parameter, so
// "URGENT" and "URGENT:idle_weight=0" become first-class specs next to
// "IRG" and "LS:max_sweeps=8". The sweep at the bottom runs the whole
// comparison through ExperimentRunner.
#include <cstdio>
#include <memory>
#include <vector>

#include "api/api.h"
#include "dispatch/candidates.h"
#include "matching/bipartite.h"

using namespace mrvd;

namespace {

/// Serve the riders that are about to renege first; among equally urgent
/// riders prefer destinations with short expected idle (the queueing
/// signal), i.e. combine deadline pressure with Eq. 17's idle ratio.
class UrgencyDispatcher final : public Dispatcher {
 public:
  explicit UrgencyDispatcher(double idle_weight) : idle_weight_(idle_weight) {}

  std::string name() const override { return "URGENT"; }

  void Dispatch(const BatchContext& ctx, std::vector<Assignment>* out) override {
    auto pairs = GenerateValidPairs(ctx);
    std::vector<WeightedPair> weighted;
    weighted.reserve(pairs.size());
    for (const auto& c : pairs) {
      const WaitingRider& r =
          ctx.riders()[static_cast<size_t>(c.rider_index)];
      double slack = r.pickup_deadline - ctx.now();  // smaller = more urgent
      double et = ctx.ExpectedIdleSeconds(r.dropoff_region);
      double idle_ratio = et / (r.trip_seconds + et);
      // Urgency dominates; the idle ratio orders riders of similar slack.
      weighted.push_back(
          {c.rider_index, c.driver_index, slack + idle_weight_ * idle_ratio});
    }
    for (size_t idx : GreedyMatch(weighted)) {
      out->push_back({weighted[idx].left, weighted[idx].right});
    }
  }

 private:
  double idle_weight_;
};

// Self-registration: a static registrar adds URGENT to the global roster
// before main() runs. The declared parameter gets the same treatment as the
// built-ins' — "URGENT:idle_weight=50" parses and type-checks, and
// "URGENT:bogus=1" fails with a Status naming the declared parameters.
const DispatcherRegistrar kRegisterUrgent(
    "URGENT",
    {{"idle_weight", DispatcherParam::Type::kDouble, 200.0,
      "weight of the idle ratio against deadline slack"}},
    [](const DispatcherParams& p) {
      return std::make_unique<UrgencyDispatcher>(p.GetDouble("idle_weight"));
    });

}  // namespace

int main() {
  GeneratorConfig city;
  city.orders_per_day = 30000;
  StatusOr<Simulation> sim = SimulationBuilder()
                                 .GenerateNycDay(/*day_index=*/2,
                                                 /*num_drivers=*/280, city)
                                 .WithOracleForecast()
                                 .Build();
  if (!sim.ok()) {
    std::fprintf(stderr, "build failed: %s\n", sim.status().ToString().c_str());
    return 1;
  }

  ExperimentRunner runner(*sim);
  StatusOr<std::vector<RunResult>> results = runner.RunAll({
      {"URGENT"},                 // idle_weight at its declared default
      {"URGENT:idle_weight=0"},   // pure deadline pressure, no queue signal
      {"IRG"},
      {"NEAR"},
  });
  if (!results.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  std::printf("%-22s %12s %10s %10s\n", "spec", "revenue", "served",
              "svc-rate");
  for (const RunResult& r : *results) {
    std::printf("%-22s %12.4e %10lld %9.1f%%\n", r.label.c_str(),
                r.result.total_revenue, (long long)r.result.served_orders,
                100.0 * r.result.ServiceRate());
  }
  std::printf(
      "\nThe urgency rule typically serves more orders; IRG earns more\n"
      "revenue per driver-hour — the trade-off Appendix C formalizes.\n");
  return 0;
}
