// Extending the framework with a custom dispatcher.
//
// Implements an urgency-aware greedy: riders closest to their pickup
// deadline are rescued first (ties broken by idle ratio). Demonstrates the
// public Dispatcher/BatchContext API and compares against IRG on the same
// workload.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "dispatch/candidates.h"
#include "dispatch/dispatchers.h"
#include "geo/travel.h"
#include "matching/bipartite.h"
#include "prediction/forecast.h"
#include "prediction/predictor.h"
#include "sim/engine.h"
#include "workload/generator.h"

using namespace mrvd;

namespace {

/// Serve the riders that are about to renege first; among equally urgent
/// riders prefer destinations with short expected idle (the queueing
/// signal), i.e. combine deadline pressure with Eq. 17's idle ratio.
class UrgencyDispatcher final : public Dispatcher {
 public:
  std::string name() const override { return "URGENT"; }

  void Dispatch(const BatchContext& ctx, std::vector<Assignment>* out) override {
    auto pairs = GenerateValidPairs(ctx);
    std::vector<WeightedPair> weighted;
    weighted.reserve(pairs.size());
    for (const auto& c : pairs) {
      const WaitingRider& r =
          ctx.riders()[static_cast<size_t>(c.rider_index)];
      double slack = r.pickup_deadline - ctx.now();  // smaller = more urgent
      double et = ctx.ExpectedIdleSeconds(r.dropoff_region);
      double idle_ratio = et / (r.trip_seconds + et);
      // Urgency dominates; the idle ratio orders riders of similar slack.
      weighted.push_back(
          {c.rider_index, c.driver_index, slack + 200.0 * idle_ratio});
    }
    for (size_t idx : GreedyMatch(weighted)) {
      out->push_back({weighted[idx].left, weighted[idx].right});
    }
  }
};

}  // namespace

int main() {
  GeneratorConfig cfg;
  cfg.orders_per_day = 30000;
  NycLikeGenerator generator(cfg);
  Workload day = generator.GenerateDay(2, 280);

  DemandHistory realized = generator.RealizedCounts(day, 48);
  auto oracle = MakeOraclePredictor();
  auto forecast = DemandForecast::Build(*oracle, realized, 0);
  if (!forecast.ok()) return 1;

  StraightLineCostModel cost(11.0, 1.3);
  SimConfig sim_cfg;

  UrgencyDispatcher urgent;
  auto irg = MakeIrgDispatcher();
  auto near = MakeNearestDispatcher();

  std::printf("%-8s %12s %10s %10s\n", "approach", "revenue", "served",
              "svc-rate");
  for (Dispatcher* d :
       {static_cast<Dispatcher*>(&urgent), irg.get(), near.get()}) {
    Simulator sim(sim_cfg, day, generator.grid(), cost, &forecast.value());
    SimResult r = sim.Run(*d);
    std::printf("%-8s %12.4e %10lld %9.1f%%\n", d->name().c_str(),
                r.total_revenue, (long long)r.served_orders,
                100.0 * r.ServiceRate());
  }
  std::printf(
      "\nThe urgency rule typically serves more orders; IRG earns more\n"
      "revenue per driver-hour — the trade-off Appendix C formalizes.\n");
  return 0;
}
