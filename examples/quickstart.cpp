// Quickstart — START HERE. The experiment API's front door: a complete
// simulated day (synthetic NYC workload, ground-truth demand forecast,
// batch engine, local-search dispatcher) assembled and run in ~10 lines
// through SimulationBuilder.
//
// Every other example builds on the same surface (src/api/): the
// DispatcherRegistry resolves "LS" below — or "LS:max_sweeps=8",
// "RAND:seed=42", any registered spec — and unknown names fail with a
// Status naming the known roster instead of crashing.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "api/api.h"
#include "telemetry/session.h"

using namespace mrvd;

int main() {
  GeneratorConfig city;         // the paper's 16x16 NYC grid...
  city.orders_per_day = 20000;  // ...at scaled-down demand

  // MRVD_TRACE_JSON=<path>: attach a telemetry session and export the
  // run's Chrome trace there (open it in Perfetto / chrome://tracing).
  const char* trace_path = std::getenv("MRVD_TRACE_JSON");
  std::optional<telemetry::TelemetrySession> telemetry;
  if (trace_path != nullptr) telemetry.emplace();

  SimulationBuilder builder;
  builder.GenerateNycDay(/*day_index=*/7, /*num_drivers=*/250, city)
      .WithOracleForecast();  // ground-truth per-slot demand counts
  if (telemetry.has_value()) builder.WithTelemetry(&*telemetry);
  StatusOr<Simulation> sim = builder.Build();
  if (!sim.ok()) {
    std::fprintf(stderr, "build failed: %s\n", sim.status().ToString().c_str());
    return 1;
  }
  StatusOr<SimResult> run = sim->Run("LS");  // queueing-based local search
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    return 1;
  }

  const SimResult& r = *run;
  std::printf("dispatcher       : %s\n", r.dispatcher.c_str());
  std::printf("served orders    : %lld / %lld (%.1f%%)\n",
              (long long)r.served_orders, (long long)r.total_orders,
              100.0 * r.ServiceRate());
  std::printf("total revenue    : %.3e (alpha * trip seconds)\n",
              r.total_revenue);
  std::printf("mean rider wait  : %.1f s\n", r.served_wait_seconds.mean());
  std::printf("mean driver idle : %.1f s\n", r.driver_idle_seconds.mean());
  std::printf("mean batch time  : %.3f ms over %lld batches\n",
              r.batch_seconds.mean() * 1e3, (long long)r.num_batches);
  std::printf("dispatch latency : p50 %.3f / p95 %.3f / p99 %.3f ms\n",
              r.dispatch_latency_p50 * 1e3, r.dispatch_latency_p95 * 1e3,
              r.dispatch_latency_p99 * 1e3);

  if (telemetry.has_value()) {
    telemetry->Finish();
    if (Status st = telemetry->WriteChromeTrace(trace_path); !st.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("trace            : %s (%lld spans)\n", trace_path,
                (long long)telemetry->drained_events());
  }
  return 0;
}
