// Quickstart — START HERE. The experiment API's front door: a complete
// simulated day (synthetic NYC workload, ground-truth demand forecast,
// batch engine, local-search dispatcher) assembled and run in ~10 lines
// through SimulationBuilder.
//
// Every other example builds on the same surface (src/api/): the
// DispatcherRegistry resolves "LS" below — or "LS:max_sweeps=8",
// "RAND:seed=42", any registered spec — and unknown names fail with a
// Status naming the known roster instead of crashing.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "api/api.h"

using namespace mrvd;

int main() {
  GeneratorConfig city;         // the paper's 16x16 NYC grid...
  city.orders_per_day = 20000;  // ...at scaled-down demand
  StatusOr<Simulation> sim =
      SimulationBuilder()
          .GenerateNycDay(/*day_index=*/7, /*num_drivers=*/250, city)
          .WithOracleForecast()  // ground-truth per-slot demand counts
          .Build();
  if (!sim.ok()) {
    std::fprintf(stderr, "build failed: %s\n", sim.status().ToString().c_str());
    return 1;
  }
  StatusOr<SimResult> run = sim->Run("LS");  // queueing-based local search
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    return 1;
  }

  const SimResult& r = *run;
  std::printf("dispatcher       : %s\n", r.dispatcher.c_str());
  std::printf("served orders    : %lld / %lld (%.1f%%)\n",
              (long long)r.served_orders, (long long)r.total_orders,
              100.0 * r.ServiceRate());
  std::printf("total revenue    : %.3e (alpha * trip seconds)\n",
              r.total_revenue);
  std::printf("mean rider wait  : %.1f s\n", r.served_wait_seconds.mean());
  std::printf("mean driver idle : %.1f s\n", r.driver_idle_seconds.mean());
  std::printf("mean batch time  : %.3f ms over %lld batches\n",
              r.batch_seconds.mean() * 1e3, (long long)r.num_batches);
  return 0;
}
