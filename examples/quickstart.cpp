// Quickstart: generate a small synthetic day, dispatch it with the
// queueing-based local-search algorithm (LS), and print the outcome.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "dispatch/dispatchers.h"
#include "geo/travel.h"
#include "prediction/forecast.h"
#include "prediction/predictor.h"
#include "sim/engine.h"
#include "workload/generator.h"

using namespace mrvd;

int main() {
  // 1. A city: the paper's 16x16 NYC grid, scaled-down demand.
  GeneratorConfig gen_cfg;
  gen_cfg.orders_per_day = 20000;
  NycLikeGenerator generator(gen_cfg);
  Workload day = generator.GenerateDay(/*day_index=*/7, /*num_drivers=*/250);
  std::printf("generated %zu orders for %zu drivers\n", day.orders.size(),
              day.drivers.size());

  // 2. A demand forecast: here the ground-truth oracle over the realized
  //    per-slot counts (swap in MakeDeepStSurrogatePredictor() + training
  //    history for a deployable predictor — see examples/demand_prediction).
  DemandHistory realized = generator.RealizedCounts(day, 48);
  auto oracle = MakeOraclePredictor();
  auto forecast = DemandForecast::Build(*oracle, realized, /*eval_day=*/0);
  if (!forecast.ok()) {
    std::fprintf(stderr, "forecast failed: %s\n",
                 forecast.status().ToString().c_str());
    return 1;
  }

  // 3. Simulate the batch-based platform (Algorithm 1) under LS.
  SimConfig sim_cfg;
  sim_cfg.batch_interval = 3.0;      // Δ
  sim_cfg.window_seconds = 1200.0;   // t_c = 20 min
  StraightLineCostModel cost(11.0, 1.3);
  Simulator sim(sim_cfg, day, generator.grid(), cost, &forecast.value());

  auto ls = MakeLocalSearchDispatcher();
  SimResult result = sim.Run(*ls);

  std::printf("dispatcher       : %s\n", result.dispatcher.c_str());
  std::printf("served orders    : %lld / %lld (%.1f%%)\n",
              (long long)result.served_orders, (long long)result.total_orders,
              100.0 * result.ServiceRate());
  std::printf("total revenue    : %.3e (alpha * trip seconds)\n",
              result.total_revenue);
  std::printf("mean rider wait  : %.1f s\n", result.served_wait_seconds.mean());
  std::printf("mean driver idle : %.1f s\n", result.driver_idle_seconds.mean());
  std::printf("mean batch time  : %.3f ms over %lld batches\n",
              result.batch_seconds.mean() * 1e3,
              (long long)result.num_batches);
  return 0;
}
